package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// echoModel is a deterministic test predictor.
type echoModel struct {
	mu    sync.Mutex
	calls int
}

func (m *echoModel) Predict(context, prompt string) string {
	m.mu.Lock()
	m.calls++
	m.mu.Unlock()
	return "- name: " + prompt + "\n  ansible.builtin.debug:\n    msg: from " + strings.TrimSpace(context) + "\n"
}

func TestRESTCompletion(t *testing.T) {
	model := &echoModel{}
	srv := NewServer(model, "test-model", 16)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	body, _ := json.Marshal(Request{Prompt: "install nginx"})
	resp, err := ts.Client().Post(ts.URL+"/v1/completions", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var out Response
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out.Suggestion, "- name: install nginx") {
		t.Errorf("suggestion = %q", out.Suggestion)
	}
	if out.Cached || out.Model != "test-model" {
		t.Errorf("response meta = %+v", out)
	}
}

func TestRESTCacheHit(t *testing.T) {
	model := &echoModel{}
	srv := NewServer(model, "m", 16)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	send := func() Response {
		body, _ := json.Marshal(Request{Prompt: "start redis", Context: "x: 1\n"})
		resp, err := ts.Client().Post(ts.URL+"/v1/completions", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out Response
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return out
	}
	first := send()
	second := send()
	if first.Cached {
		t.Error("first request reported cached")
	}
	if !second.Cached {
		t.Error("second identical request not cached")
	}
	if model.calls != 1 {
		t.Errorf("model called %d times, want 1", model.calls)
	}
	if first.Suggestion != second.Suggestion {
		t.Error("cache changed the suggestion")
	}
}

func TestRESTValidation(t *testing.T) {
	srv := NewServer(&echoModel{}, "m", 0)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Missing prompt.
	resp, err := ts.Client().Post(ts.URL+"/v1/completions", "application/json", strings.NewReader(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Errorf("empty prompt status = %d, want 400", resp.StatusCode)
	}
	// Bad JSON.
	resp, err = ts.Client().Post(ts.URL+"/v1/completions", "application/json", strings.NewReader(`{`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Errorf("bad json status = %d, want 400", resp.StatusCode)
	}
	// Wrong method.
	getResp, err := ts.Client().Get(ts.URL + "/v1/completions")
	if err != nil {
		t.Fatal(err)
	}
	getResp.Body.Close()
	if getResp.StatusCode != 405 {
		t.Errorf("GET status = %d, want 405", getResp.StatusCode)
	}
}

func TestHealthEndpoint(t *testing.T) {
	srv := NewServer(&echoModel{}, "health-model", 0)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, err := ts.Client().Get(ts.URL + "/v1/health")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"status":"ok"`) || !strings.Contains(buf.String(), "health-model") {
		t.Errorf("health = %s", buf.String())
	}
}

func TestRPCRoundTrip(t *testing.T) {
	model := &echoModel{}
	srv := NewServer(model, "rpc-model", 8)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() { _ = srv.ServeRPC(ln) }()

	client, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	resp, err := client.Predict(Request{Prompt: "create backup dir", Context: "ctx\n"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(resp.Suggestion, "create backup dir") || resp.Model != "rpc-model" {
		t.Errorf("rpc response = %+v", resp)
	}

	// Second identical call over the SAME connection: cache hit.
	resp2, err := client.Predict(Request{Prompt: "create backup dir", Context: "ctx\n"})
	if err != nil {
		t.Fatal(err)
	}
	if !resp2.Cached {
		t.Error("second rpc call not cached")
	}
	if srv.Requests() != 2 {
		t.Errorf("requests = %d", srv.Requests())
	}
}

func TestRPCMultipleClients(t *testing.T) {
	srv := NewServer(&echoModel{}, "m", 0)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() { _ = srv.ServeRPC(ln) }()

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := Dial(ln.Addr().String())
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for j := 0; j < 5; j++ {
				resp, err := c.Predict(Request{Prompt: fmt.Sprintf("task %d-%d", i, j)})
				if err != nil {
					errs <- err
					return
				}
				if !strings.Contains(resp.Suggestion, fmt.Sprintf("task %d-%d", i, j)) {
					errs <- fmt.Errorf("cross-talk: %q", resp.Suggestion)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestFrameLimits(t *testing.T) {
	srv := NewServer(&echoModel{}, "m", 0)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() { _ = srv.ServeRPC(ln) }()

	// A raw connection sending an oversized frame header must be dropped,
	// not crash the server.
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	_, _ = conn.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err == nil {
		t.Error("server answered an invalid frame")
	}
	conn.Close()

	// The server must still work afterwards.
	c, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Predict(Request{Prompt: "still alive"}); err != nil {
		t.Errorf("server broken after bad frame: %v", err)
	}
}

func TestCacheLRU(t *testing.T) {
	c := NewCache(2)
	c.Put("a", "1")
	c.Put("b", "2")
	if v, ok := c.Get("a"); !ok || v != "1" {
		t.Error("a missing")
	}
	c.Put("c", "3") // evicts b (a was just used)
	if _, ok := c.Get("b"); ok {
		t.Error("b should have been evicted")
	}
	if _, ok := c.Get("a"); !ok {
		t.Error("a should survive")
	}
	if c.Len() != 2 {
		t.Errorf("len = %d", c.Len())
	}
	hits, misses, evictions := c.Stats()
	if hits != 2 || misses != 1 || evictions != 1 {
		t.Errorf("stats = %d/%d/%d, want 2/1/1", hits, misses, evictions)
	}
}

func TestCacheUpdate(t *testing.T) {
	c := NewCache(2)
	c.Put("k", "old")
	c.Put("k", "new")
	if v, _ := c.Get("k"); v != "new" {
		t.Errorf("value = %q", v)
	}
	if c.Len() != 1 {
		t.Errorf("len = %d", c.Len())
	}
}

func TestCacheCapacityClamp(t *testing.T) {
	c := NewCache(0)
	c.Put("a", "1")
	c.Put("b", "2")
	if c.Len() != 1 {
		t.Errorf("len = %d, want 1 (clamped capacity)", c.Len())
	}
}

func TestStatsEndpoint(t *testing.T) {
	srv := NewServer(&echoModel{}, "stats-model", 8)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Two identical requests: one miss, one hit.
	for i := 0; i < 2; i++ {
		body, _ := json.Marshal(Request{Prompt: "x"})
		resp, err := ts.Client().Post(ts.URL+"/v1/completions", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	resp, err := ts.Client().Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Model != "stats-model" || st.Requests != 2 || !st.CacheEnabled {
		t.Errorf("stats = %+v", st)
	}
	if st.CacheHits != 1 || st.CacheMisses != 1 || st.CacheEntries != 1 {
		t.Errorf("cache stats = %+v", st)
	}
	if st.HitRate != 0.5 {
		t.Errorf("hit rate = %v", st.HitRate)
	}
}

func TestStatsWithoutCache(t *testing.T) {
	srv := NewServer(&echoModel{}, "m", 0)
	st := srv.Stats()
	if st.CacheEnabled || st.HitRate != 0 {
		t.Errorf("stats = %+v", st)
	}
}
