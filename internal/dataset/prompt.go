package dataset

import (
	"strings"

	"wisdom/internal/tokenizer"
)

// PromptStyle renders a sample into the text the model sees.
type PromptStyle int

const (
	// NameCompletion is the paper's formulation (Eq. 2): the NL prompt is
	// embedded as the task's "name" field and the model completes the
	// body. This is the style all Wisdom results use.
	NameCompletion PromptStyle = iota
	// PrefixPrompt is the ablation baseline ("CodeGen-prefix" in Table 4):
	// explicit "context code" / "prompt" prefix sections followed by the
	// expected output.
	PrefixPrompt
)

// RenderInput produces the model input text for a sample under a style.
func RenderInput(s Sample, style PromptStyle) string {
	switch style {
	case PrefixPrompt:
		var sb strings.Builder
		sb.WriteString("context code\n")
		sb.WriteString(s.Context)
		sb.WriteString("prompt\n")
		sb.WriteString(s.Prompt)
		sb.WriteString("\n")
		return sb.String()
	default:
		return s.Input()
	}
}

// RenderFull produces input plus target, the fine-tuning text.
func RenderFull(s Sample, style PromptStyle) string {
	return RenderInput(s, style) + s.Target
}

// FewShotPrefix is the hint string that improves zero-context generations
// of code models not pre-trained on Ansible (§Experiment Settings: adding
// "Ansible\n" before the prompt improves CodeGen and Codex).
const FewShotPrefix = "Ansible\n"

// PackFiles concatenates tokenised file texts into fixed-size pre-training
// windows, separated by the tokenizer's separator token, exactly as the
// paper packs YAML files into 1024-token windows.
func PackFiles(tok *tokenizer.Tokenizer, texts []string, window int) [][]int {
	if window < 2 {
		return nil
	}
	var packed [][]int
	cur := make([]int, 0, window)
	flush := func() {
		if len(cur) >= 2 {
			packed = append(packed, cur)
		}
		cur = make([]int, 0, window)
	}
	for _, text := range texts {
		ids := tok.Encode(text)
		ids = append(ids, tok.Sep())
		for len(ids) > 0 {
			space := window - len(cur)
			if space == 0 {
				flush()
				space = window
			}
			n := len(ids)
			if n > space {
				n = space
			}
			cur = append(cur, ids[:n]...)
			ids = ids[n:]
		}
	}
	flush()
	return packed
}

// LeftTruncate keeps the last window tokens, the paper's policy when the
// input {Y_NL, C} exceeds the inference context window.
func LeftTruncate(ids []int, window int) []int {
	if len(ids) <= window {
		return ids
	}
	return ids[len(ids)-window:]
}

// TruncateFirstTask cuts a generated completion down to its first task, the
// paper's output post-processing for task-generation evaluations. The body
// of the first task consists of the lines more indented than the task dash;
// a new "- " at the original indent (or a dedent) ends it. indent is the
// byte column of the task's dash in the prompt's name line.
func TruncateFirstTask(completion string, indent int) string {
	lines := strings.Split(completion, "\n")
	prefix := strings.Repeat(" ", indent)
	var kept []string
	for _, l := range lines {
		trimmed := strings.TrimRight(l, " \t")
		if trimmed == "" {
			// Blank line: keep only if more content of this task follows;
			// simplest faithful policy is to stop (tasks are contiguous).
			break
		}
		ind := len(l) - len(strings.TrimLeft(l, " "))
		if ind <= indent {
			// A sibling "- ..." starts a new task; any dedent leaves the
			// task body.
			break
		}
		_ = prefix
		kept = append(kept, trimmed)
	}
	if len(kept) == 0 {
		return ""
	}
	return strings.Join(kept, "\n") + "\n"
}

// NameLineIndent returns the column of the dash in a rendered name line
// ("    - name: x" -> 4).
func NameLineIndent(nameLine string) int {
	return len(nameLine) - len(strings.TrimLeft(nameLine, " "))
}

// ReassembleTask prepends the sample's name line to a generated body so the
// result parses as a complete task (or playbook) for metric computation.
func ReassembleTask(s Sample, body string) string {
	return s.NameLine + "\n" + body
}

// StripIndent removes n leading spaces from every line, used to compare
// playbook-nested tasks against role-style references.
func StripIndent(text string, n int) string {
	prefix := strings.Repeat(" ", n)
	lines := strings.Split(text, "\n")
	for i, l := range lines {
		lines[i] = strings.TrimPrefix(l, prefix)
	}
	return strings.Join(lines, "\n")
}

// ShiftIndent re-indents text from one base column to another: a task body
// written at indent `from` (e.g. a role task at column 0) is moved to indent
// `to` (e.g. nested under a play's tasks section). Blank lines stay empty.
func ShiftIndent(text string, from, to int) string {
	if from == to {
		return text
	}
	lines := strings.Split(text, "\n")
	for i, l := range lines {
		if strings.TrimSpace(l) == "" {
			continue
		}
		if to > from {
			lines[i] = strings.Repeat(" ", to-from) + l
			continue
		}
		lines[i] = strings.TrimPrefix(l, strings.Repeat(" ", from-to))
	}
	return strings.Join(lines, "\n")
}
