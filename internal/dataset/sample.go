// Package dataset implements the fine-tuning data pipeline of the paper:
// extraction of the four generation types (NL→PB, PB+NL→T, NL→T, T+NL→T)
// from playbooks and role task files, exact-match deduplication at file and
// sample level, the 80/10/10 split, the code-completion prompt formulation
// (plus the prefix-style ablation baseline), pre-training context packing
// with a separator token, and left truncation to a context window.
package dataset

import (
	"fmt"
	"strings"

	"wisdom/internal/corpus"
	"wisdom/internal/yaml"
)

// GenType is one of the paper's four generation problem types.
type GenType int

const (
	// NLtoPB generates a full playbook from a natural-language prompt.
	NLtoPB GenType = iota
	// PBNLtoT generates the next task of a playbook.
	PBNLtoT
	// NLtoT generates the first task of a role from the prompt alone.
	NLtoT
	// TNLtoT generates the next task of a role given previous tasks.
	TNLtoT
)

// String returns the paper's notation for the generation type.
func (g GenType) String() string {
	switch g {
	case NLtoPB:
		return "NL->PB"
	case PBNLtoT:
		return "PB+NL->T"
	case NLtoT:
		return "NL->T"
	case TNLtoT:
		return "T+NL->T"
	}
	return fmt.Sprintf("gentype(%d)", int(g))
}

// Sample is one fine-tuning / evaluation example.
type Sample struct {
	// Type is the generation problem type.
	Type GenType
	// Context is the Ansible-YAML context C (empty for NL→PB and NL→T).
	Context string
	// Prompt is the natural-language intent X.
	Prompt string
	// NameLine is the rendered "- name: X" line, with its indentation,
	// that turns the problem into code completion (Eq. 2 of the paper).
	NameLine string
	// Target is the expected completion Y: the body following NameLine.
	Target string
}

// Input renders the model input under the paper's prompt formulation:
// context followed by the name line (the model completes the rest).
func (s Sample) Input() string {
	return s.Context + s.NameLine + "\n"
}

// Full renders input plus target, the fine-tuning text.
func (s Sample) Full() string {
	return s.Input() + s.Target
}

// taskIndent is the indentation of tasks inside a playbook's tasks section
// in the canonical Ansible style.
const taskIndent = "    "

// ExtractSamples derives generation samples from one Ansible file. Role
// task files yield one NL→T (first task) plus T+NL→T for each later task;
// playbooks with at most two tasks yield one NL→PB; larger playbooks yield
// PB+NL→T for each task after the first. Files that fail to parse yield
// nothing.
func ExtractSamples(f corpus.File) []Sample {
	root, err := yaml.Parse(f.Text)
	if err != nil {
		return nil
	}
	switch {
	case f.Kind == corpus.AnsiblePlaybook && root.Kind == yaml.SequenceNode:
		return playbookSamples(f.Text, root)
	case root.Kind == yaml.SequenceNode:
		return taskFileSamples(f.Text)
	default:
		return nil
	}
}

// taskFileSamples splits a role task file's text at every top-level
// "- name:" line.
func taskFileSamples(text string) []Sample {
	starts, lines := nameLineOffsets(text, "- name: ")
	if len(starts) == 0 {
		return nil
	}
	var samples []Sample
	for i, ln := range starts {
		end := len(lines)
		if i+1 < len(starts) {
			end = starts[i+1]
		}
		nameLine := lines[ln]
		prompt := strings.TrimPrefix(nameLine, "- name: ")
		target := strings.Join(lines[ln+1:end], "\n")
		if strings.TrimSpace(target) == "" {
			continue
		}
		target += "\n"
		if i == 0 {
			samples = append(samples, Sample{
				Type: NLtoT, Prompt: prompt, NameLine: nameLine, Target: target,
			})
			continue
		}
		context := strings.Join(lines[:ln], "\n") + "\n"
		samples = append(samples, Sample{
			Type: TNLtoT, Context: context, Prompt: prompt, NameLine: nameLine, Target: target,
		})
	}
	return samples
}

// playbookSamples extracts either one NL→PB sample (small playbooks) or
// PB+NL→T samples for every task after the first (larger playbooks).
func playbookSamples(text string, root *yaml.Node) []Sample {
	nTasks := 0
	var names []string
	for _, play := range root.Items {
		if n := play.Get("name"); n != nil && n.Value != "" {
			names = append(names, n.Value)
		}
		if tasks := play.Get("tasks"); tasks != nil {
			nTasks += len(tasks.Items)
			for _, t := range tasks.Items {
				if n := t.Get("name"); n != nil && n.Value != "" {
					names = append(names, n.Value)
				}
			}
		}
	}
	if nTasks == 0 {
		return nil
	}
	if nTasks <= 2 {
		return nlToPBSample(text, names)
	}
	return pbTaskSamples(text)
}

// nlToPBSample builds the NL→PB sample: the prompt combines the name fields
// of the playbook and its tasks (per §Input Prompt Formulation); the model
// input is the document marker plus the play's name line.
func nlToPBSample(text string, names []string) []Sample {
	lines := strings.Split(strings.TrimSuffix(text, "\n"), "\n")
	// Find the first "- name:" line (the play's own name). Playbooks whose
	// play lacks a name cannot form a name-completion prompt; skip them, as
	// the paper skips unusable Galaxy files.
	ln := -1
	for i, l := range lines {
		if strings.HasPrefix(l, "- name: ") {
			ln = i
			break
		}
		if i > 1 && strings.HasPrefix(l, "- ") {
			break // first play starts without a name
		}
	}
	if ln < 0 || len(names) == 0 {
		return nil
	}
	target := strings.Join(lines[ln+1:], "\n")
	if strings.TrimSpace(target) == "" {
		return nil
	}
	return []Sample{{
		Type:     NLtoPB,
		Context:  strings.Join(lines[:ln], "\n") + "\n", // "---" header
		Prompt:   strings.Join(names, " and "),
		NameLine: lines[ln],
		Target:   target + "\n",
	}}
}

// pbTaskSamples builds PB+NL→T samples: for every task after the first, the
// context is the playbook up to that task's name line.
func pbTaskSamples(text string) []Sample {
	starts, lines := nameLineOffsets(text, taskIndent+"- name: ")
	if len(starts) < 2 {
		return nil
	}
	var samples []Sample
	for i := 1; i < len(starts); i++ {
		ln := starts[i]
		// The task body ends at the next task's name line or at the first
		// dedent out of the task body (a handlers section or the next
		// play), whichever comes first.
		end := len(lines)
		if i+1 < len(starts) {
			end = starts[i+1]
		}
		for j := ln + 1; j < end; j++ {
			if !strings.HasPrefix(lines[j], taskIndent+"  ") {
				end = j
				break
			}
		}
		nameLine := lines[ln]
		target := strings.Join(lines[ln+1:end], "\n")
		if strings.TrimSpace(target) == "" {
			continue
		}
		samples = append(samples, Sample{
			Type:     PBNLtoT,
			Context:  strings.Join(lines[:ln], "\n") + "\n",
			Prompt:   strings.TrimPrefix(nameLine, taskIndent+"- name: "),
			NameLine: nameLine,
			Target:   target + "\n",
		})
	}
	return samples
}

// nameLineOffsets returns the indices of lines starting with the given task
// prefix, along with all lines of the text.
func nameLineOffsets(text, prefix string) (starts []int, lines []string) {
	lines = strings.Split(strings.TrimSuffix(text, "\n"), "\n")
	for i, l := range lines {
		if strings.HasPrefix(l, prefix) {
			starts = append(starts, i)
		}
	}
	return starts, lines
}

// ExtractAll extracts samples from every file.
func ExtractAll(files []corpus.File) []Sample {
	var out []Sample
	for _, f := range files {
		out = append(out, ExtractSamples(f)...)
	}
	return out
}

// CountByType tallies samples per generation type.
func CountByType(samples []Sample) map[GenType]int {
	m := make(map[GenType]int, 4)
	for _, s := range samples {
		m[s.Type]++
	}
	return m
}
