package dataset

import (
	"strings"
	"testing"

	"wisdom/internal/ansible"
	"wisdom/internal/corpus"
	"wisdom/internal/tokenizer"
	"wisdom/internal/yaml"
)

const roleFile = `---
- name: Ensure apache is at the latest version
  ansible.builtin.yum:
    name: httpd
    state: latest
- name: Write the apache config file
  ansible.builtin.template:
    src: /srv/httpd.j2
    dest: /etc/httpd.conf
- name: Start apache
  ansible.builtin.service:
    name: httpd
    state: started
`

const smallPlaybook = `---
- name: Network Setup Playbook
  hosts: all
  gather_facts: false
  tasks:
    - name: Get config for VyOS devices
      vyos.vyos.vyos_facts:
        gather_subset: all
    - name: Update the hostname
      vyos.vyos.vyos_config:
        backup: true
        lines:
          - set system host-name vyos-changed
`

const bigPlaybook = `---
- name: Web stack
  hosts: webservers
  tasks:
    - name: Install nginx
      ansible.builtin.apt:
        name: nginx
        state: present
    - name: Deploy config
      ansible.builtin.template:
        src: nginx.conf.j2
        dest: /etc/nginx/nginx.conf
    - name: Start nginx
      ansible.builtin.service:
        name: nginx
        state: started
`

func file(kind corpus.Kind, text string) corpus.File {
	return corpus.File{Source: "test", Path: "x.yml", Kind: kind, Text: text}
}

func TestExtractRoleFile(t *testing.T) {
	samples := ExtractSamples(file(corpus.AnsibleTasks, roleFile))
	if len(samples) != 3 {
		t.Fatalf("got %d samples, want 3", len(samples))
	}
	if samples[0].Type != NLtoT {
		t.Errorf("first sample type = %v", samples[0].Type)
	}
	if samples[0].Prompt != "Ensure apache is at the latest version" {
		t.Errorf("prompt = %q", samples[0].Prompt)
	}
	if samples[0].Context != "" {
		t.Errorf("NL->T context = %q, want empty", samples[0].Context)
	}
	if !strings.Contains(samples[0].Target, "ansible.builtin.yum") {
		t.Errorf("target = %q", samples[0].Target)
	}
	for _, s := range samples[1:] {
		if s.Type != TNLtoT {
			t.Errorf("later sample type = %v", s.Type)
		}
	}
	// The T+NL->T context holds all earlier tasks.
	if !strings.Contains(samples[2].Context, "yum") || !strings.Contains(samples[2].Context, "template") {
		t.Errorf("context = %q", samples[2].Context)
	}
	// Input+Target reassembles into parseable YAML.
	for _, s := range samples {
		if _, err := yaml.Parse(s.Full()); err != nil {
			t.Errorf("sample does not reassemble: %v\n%s", err, s.Full())
		}
	}
}

func TestExtractSmallPlaybook(t *testing.T) {
	samples := ExtractSamples(file(corpus.AnsiblePlaybook, smallPlaybook))
	if len(samples) != 1 || samples[0].Type != NLtoPB {
		t.Fatalf("samples = %+v", samples)
	}
	s := samples[0]
	// Prompt combines playbook and task names.
	for _, part := range []string{"Network Setup Playbook", "Get config for VyOS devices", "Update the hostname"} {
		if !strings.Contains(s.Prompt, part) {
			t.Errorf("prompt %q missing %q", s.Prompt, part)
		}
	}
	if s.Context != "---\n" {
		t.Errorf("context = %q", s.Context)
	}
	if !strings.Contains(s.Target, "hosts: all") {
		t.Errorf("target = %q", s.Target)
	}
	if _, err := yaml.Parse(s.Full()); err != nil {
		t.Errorf("reassembled playbook invalid: %v", err)
	}
}

func TestExtractBigPlaybook(t *testing.T) {
	samples := ExtractSamples(file(corpus.AnsiblePlaybook, bigPlaybook))
	if len(samples) != 2 {
		t.Fatalf("got %d samples, want 2 (tasks after the first)", len(samples))
	}
	for _, s := range samples {
		if s.Type != PBNLtoT {
			t.Errorf("type = %v", s.Type)
		}
		if !strings.Contains(s.Context, "hosts: webservers") {
			t.Errorf("context lacks play header: %q", s.Context)
		}
		if _, err := yaml.Parse(s.Full()); err != nil {
			t.Errorf("reassembly failed: %v\n%s", err, s.Full())
		}
	}
	if samples[0].Prompt != "Deploy config" || samples[1].Prompt != "Start nginx" {
		t.Errorf("prompts = %q, %q", samples[0].Prompt, samples[1].Prompt)
	}
	// Targets must contain exactly one task body.
	if strings.Contains(samples[0].Target, "- name:") {
		t.Errorf("target spans multiple tasks: %q", samples[0].Target)
	}
}

func TestExtractedTargetsValidate(t *testing.T) {
	// Reassembled task samples from generated corpus must satisfy the
	// schema (Galaxy style is vetted).
	files := corpus.Galaxy(21, 40)
	v := ansible.NewValidator()
	n := 0
	for _, f := range files {
		for _, s := range ExtractSamples(f) {
			if s.Type == NLtoPB {
				continue
			}
			text := StripIndent(ReassembleTask(s, s.Target), NameLineIndent(s.NameLine))
			node, err := yaml.Parse(text)
			if err != nil {
				t.Fatalf("task does not parse: %v\n%s", err, text)
			}
			if errs := v.ValidateTaskList(node); len(errs) != 0 {
				t.Fatalf("task fails schema: %v\n%s", errs, text)
			}
			n++
		}
	}
	if n == 0 {
		t.Fatal("no task samples extracted")
	}
}

func TestTypeDistributionMatchesPaper(t *testing.T) {
	// Table 5: T+NL->T dominates, then NL->T, then PB+NL->T, NL->PB rare.
	files := corpus.Galaxy(22, 800)
	counts := CountByType(ExtractAll(files))
	if counts[TNLtoT] <= counts[NLtoT] {
		t.Errorf("T+NL->T (%d) should dominate NL->T (%d)", counts[TNLtoT], counts[NLtoT])
	}
	if counts[NLtoPB] == 0 || counts[PBNLtoT] == 0 {
		t.Errorf("missing playbook samples: %v", counts)
	}
	if counts[NLtoPB] >= counts[TNLtoT] {
		t.Errorf("NL->PB (%d) should be rare vs T+NL->T (%d)", counts[NLtoPB], counts[TNLtoT])
	}
}

func TestDedupFiles(t *testing.T) {
	files := []corpus.File{
		{Path: "a", Text: "x: 1\n"},
		{Path: "b", Text: "x: 2\n"},
		{Path: "c", Text: "x: 1\n"}, // dup of a
	}
	out := DedupFiles(files)
	if len(out) != 2 || out[0].Path != "a" || out[1].Path != "b" {
		t.Errorf("dedup = %+v", out)
	}
	// Idempotent.
	if len(DedupFiles(out)) != 2 {
		t.Error("dedup not idempotent")
	}
}

func TestSplitProportionsAndDisjoint(t *testing.T) {
	files := corpus.Galaxy(23, 200)
	files = DedupFiles(files)
	s := SplitFiles(files, 7)
	total := len(s.Train) + len(s.Valid) + len(s.Test)
	if total != len(files) {
		t.Fatalf("split lost files: %d != %d", total, len(files))
	}
	if len(s.Train) != len(files)*8/10 {
		t.Errorf("train = %d, want %d", len(s.Train), len(files)*8/10)
	}
	paths := map[string]int{}
	for _, f := range s.Train {
		paths[f.Path+f.Text]++
	}
	for _, f := range append(append([]corpus.File{}, s.Valid...), s.Test...) {
		if paths[f.Path+f.Text] > 0 {
			t.Fatalf("file %s appears in two splits", f.Path)
		}
	}
	// Deterministic.
	s2 := SplitFiles(files, 7)
	if len(s2.Train) != len(s.Train) || s2.Train[0].Path != s.Train[0].Path {
		t.Error("split not deterministic")
	}
}

func TestCrossSplitDedup(t *testing.T) {
	a := Sample{Prompt: "p1", NameLine: "- name: p1", Target: "x: 1\n"}
	b := Sample{Prompt: "p2", NameLine: "- name: p2", Target: "x: 2\n"}
	c := Sample{Prompt: "p3", NameLine: "- name: p3", Target: "x: 3\n"}
	tr, va, te := CrossSplitDedup(
		[]Sample{a, a, b},
		[]Sample{a, c},
		[]Sample{b, c, c},
	)
	if len(tr) != 2 {
		t.Errorf("train = %d, want 2", len(tr))
	}
	if len(va) != 1 || va[0].Prompt != "p3" {
		t.Errorf("valid = %+v", va)
	}
	if len(te) != 0 {
		t.Errorf("test = %+v (b in train, c in valid)", te)
	}
}

func TestBuildPipeline(t *testing.T) {
	raw := corpus.Galaxy(24, 150)
	p := BuildPipeline(raw, 3)
	if len(p.Files) >= len(raw) {
		t.Error("pipeline deduplicated nothing (corpus contains dups by construction)")
	}
	if len(p.Train) == 0 || len(p.Valid) == 0 || len(p.Test) == 0 {
		t.Fatalf("empty split: %d/%d/%d", len(p.Train), len(p.Valid), len(p.Test))
	}
	if len(p.Train) < len(p.Test) {
		t.Errorf("train (%d) smaller than test (%d)", len(p.Train), len(p.Test))
	}
}

func TestPromptStyles(t *testing.T) {
	s := Sample{
		Type:     TNLtoT,
		Context:  "- name: earlier\n  ansible.builtin.debug:\n    msg: hi\n",
		Prompt:   "install nginx",
		NameLine: "- name: install nginx",
		Target:   "  ansible.builtin.apt:\n    name: nginx\n    state: present\n",
	}
	nameIn := RenderInput(s, NameCompletion)
	if !strings.HasSuffix(nameIn, "- name: install nginx\n") {
		t.Errorf("name-completion input = %q", nameIn)
	}
	if !strings.HasPrefix(nameIn, s.Context) {
		t.Error("context missing from input")
	}
	prefIn := RenderInput(s, PrefixPrompt)
	if !strings.HasPrefix(prefIn, "context code\n") || !strings.Contains(prefIn, "prompt\ninstall nginx\n") {
		t.Errorf("prefix input = %q", prefIn)
	}
	if RenderFull(s, NameCompletion) != s.Full() {
		t.Error("RenderFull name-completion mismatch")
	}
}

func TestPackFiles(t *testing.T) {
	tok, err := tokenizer.Train([]string{"aaa bbb ccc ddd eee fff"}, 260)
	if err != nil {
		t.Fatal(err)
	}
	texts := []string{"aaa bbb", "ccc ddd", "eee fff", "aaa ccc eee"}
	window := 8
	packed := PackFiles(tok, texts, window)
	if len(packed) == 0 {
		t.Fatal("nothing packed")
	}
	total := 0
	seps := 0
	for i, w := range packed {
		if len(w) > window {
			t.Fatalf("window %d has %d tokens > %d", i, len(w), window)
		}
		if i < len(packed)-1 && len(w) != window {
			t.Errorf("non-final window %d not full: %d", i, len(w))
		}
		total += len(w)
		for _, id := range w {
			if id == tok.Sep() {
				seps++
			}
		}
	}
	if seps != len(texts) {
		t.Errorf("separators = %d, want %d", seps, len(texts))
	}
	// Round trip: decoded concatenation contains all inputs in order.
	var all []int
	for _, w := range packed {
		all = append(all, w...)
	}
	joined := tok.Decode(all)
	at := 0
	for _, text := range texts {
		i := strings.Index(joined[at:], text)
		if i < 0 {
			t.Fatalf("packed stream lost %q", text)
		}
		at += i + len(text)
	}
	if total != len(all) {
		t.Error("token count mismatch")
	}
}

func TestLeftTruncate(t *testing.T) {
	ids := []int{1, 2, 3, 4, 5}
	if got := LeftTruncate(ids, 3); len(got) != 3 || got[0] != 3 {
		t.Errorf("LeftTruncate = %v", got)
	}
	if got := LeftTruncate(ids, 10); len(got) != 5 {
		t.Errorf("no-op truncate = %v", got)
	}
}

func TestTruncateFirstTask(t *testing.T) {
	completion := `  ansible.builtin.apt:
    name: nginx
    state: present
- name: second task
  ansible.builtin.service:
    name: nginx
`
	got := TruncateFirstTask(completion, 0)
	if strings.Contains(got, "second task") {
		t.Errorf("second task not truncated: %q", got)
	}
	if !strings.Contains(got, "state: present") {
		t.Errorf("first task truncated too early: %q", got)
	}
	// Nested (playbook) indent.
	nested := "      vyos.vyos.vyos_facts:\n        gather_subset: all\n    - name: next\n      m:\n"
	got = TruncateFirstTask(nested, 4)
	if strings.Contains(got, "next") || !strings.Contains(got, "gather_subset") {
		t.Errorf("nested truncation = %q", got)
	}
	if TruncateFirstTask("", 0) != "" {
		t.Error("empty completion not empty")
	}
}

func TestNameLineIndent(t *testing.T) {
	if NameLineIndent("- name: x") != 0 || NameLineIndent("    - name: x") != 4 {
		t.Error("NameLineIndent wrong")
	}
}

func TestFewShotPrefix(t *testing.T) {
	if FewShotPrefix != "Ansible\n" {
		t.Errorf("FewShotPrefix = %q", FewShotPrefix)
	}
}

// trainTok builds a small tokenizer over the given texts for tests.
func trainTok(t *testing.T, texts []string) *tokenizer.Tokenizer {
	t.Helper()
	tok, err := tokenizer.Train(texts, 400)
	if err != nil {
		t.Fatal(err)
	}
	return tok
}

func TestRoleFilesFilteredByExtraction(t *testing.T) {
	// Extraction yields samples only from task-bearing files — the
	// paper's "we extracted only playbooks containing tasks, and lists of
	// tasks from roles". Meta and defaults files contribute nothing.
	files := corpus.GalaxyRoles(18, 15)
	var fromTasks, fromOther int
	for _, f := range files {
		n := len(ExtractSamples(f))
		if strings.Contains(f.Path, "/tasks/") || strings.Contains(f.Path, "/handlers/") {
			fromTasks += n
		} else {
			fromOther += n
		}
	}
	if fromTasks == 0 {
		t.Error("no samples from task files")
	}
	if fromOther != 0 {
		t.Errorf("%d samples extracted from meta/defaults files", fromOther)
	}
}
