package dataset

import (
	"math/rand"

	"wisdom/internal/corpus"
)

// DedupFiles removes files whose text exactly matches an earlier file, the
// paper's simple exact-match criterion. Order is preserved.
func DedupFiles(files []corpus.File) []corpus.File {
	seen := make(map[string]bool, len(files))
	out := files[:0:0]
	for _, f := range files {
		if seen[f.Text] {
			continue
		}
		seen[f.Text] = true
		out = append(out, f)
	}
	return out
}

// DedupSamples removes samples whose full rendered text exactly matches an
// earlier sample ("Exact match deduplication is performed ... at the sample
// level across all splits"). Order is preserved.
func DedupSamples(samples []Sample) []Sample {
	seen := make(map[string]bool, len(samples))
	out := samples[:0:0]
	for _, s := range samples {
		key := s.Full()
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, s)
	}
	return out
}

// Split holds the three partitions of the fine-tuning corpus.
type Split struct {
	Train []corpus.File
	Valid []corpus.File
	Test  []corpus.File
}

// SplitFiles randomly partitions files 80/10/10 (train/valid/test), the
// paper's split, deterministically for a given seed.
func SplitFiles(files []corpus.File, seed int64) Split {
	idx := make([]int, len(files))
	for i := range idx {
		idx[i] = i
	}
	r := rand.New(rand.NewSource(seed))
	r.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
	nTrain := len(files) * 8 / 10
	nValid := len(files) / 10
	var s Split
	for p, i := range idx {
		switch {
		case p < nTrain:
			s.Train = append(s.Train, files[i])
		case p < nTrain+nValid:
			s.Valid = append(s.Valid, files[i])
		default:
			s.Test = append(s.Test, files[i])
		}
	}
	return s
}

// CrossSplitDedup removes from valid and test any sample whose rendered
// text also occurs in train (and from test any sample also in valid),
// enforcing the paper's "across all splits" sample-level deduplication.
func CrossSplitDedup(train, valid, test []Sample) (tr, va, te []Sample) {
	seen := make(map[string]bool, len(train))
	tr = DedupSamples(train)
	for _, s := range tr {
		seen[s.Full()] = true
	}
	for _, s := range DedupSamples(valid) {
		if !seen[s.Full()] {
			va = append(va, s)
			seen[s.Full()] = true
		}
	}
	for _, s := range DedupSamples(test) {
		if !seen[s.Full()] {
			te = append(te, s)
		}
	}
	return tr, va, te
}

// Pipeline runs the complete fine-tuning data pipeline on a raw crawl:
// file-level dedup, 80/10/10 split, sample extraction per split, and
// cross-split sample-level dedup.
type Pipeline struct {
	// Files after dedup.
	Files []corpus.File
	// FileSplit is the file-level partition.
	FileSplit Split
	// Train, Valid, Test are the extracted, deduplicated samples.
	Train, Valid, Test []Sample
}

// BuildPipeline constructs the pipeline from raw files.
func BuildPipeline(raw []corpus.File, seed int64) *Pipeline {
	p := &Pipeline{}
	p.Files = DedupFiles(raw)
	p.FileSplit = SplitFiles(p.Files, seed)
	p.Train, p.Valid, p.Test = CrossSplitDedup(
		ExtractAll(p.FileSplit.Train),
		ExtractAll(p.FileSplit.Valid),
		ExtractAll(p.FileSplit.Test),
	)
	return p
}
