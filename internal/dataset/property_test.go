package dataset

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"wisdom/internal/corpus"
)

func TestShiftIndentInverse(t *testing.T) {
	f := func(lines []string, fromRaw, toRaw uint8) bool {
		from, to := int(fromRaw%8), int(toRaw%8)
		// Build a text whose every non-empty line is indented >= from, so
		// the shift is well-defined (task bodies always satisfy this).
		var sb strings.Builder
		for _, l := range lines {
			l = strings.Map(func(r rune) rune {
				if r == '\n' || r == '\r' {
					return ' '
				}
				return r
			}, l)
			l = strings.TrimLeft(l, " ")
			if l != "" {
				sb.WriteString(strings.Repeat(" ", from))
				sb.WriteString(l)
			}
			sb.WriteByte('\n')
		}
		text := sb.String()
		shifted := ShiftIndent(text, from, to)
		back := ShiftIndent(shifted, to, from)
		return back == text
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestShiftIndentBlankLinesUntouched(t *testing.T) {
	text := "  a: 1\n\n  b: 2\n"
	shifted := ShiftIndent(text, 2, 6)
	if !strings.Contains(shifted, "\n\n") {
		t.Errorf("blank line gained indentation: %q", shifted)
	}
}

func TestTruncateFirstTaskIdempotent(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	for i := 0; i < 100; i++ {
		file := corpus.RoleTaskFile(r, corpus.GalaxyStyle)
		samples := ExtractSamples(corpus.File{Kind: corpus.AnsibleTasks, Text: file})
		for _, s := range samples {
			once := TruncateFirstTask(s.Target, NameLineIndent(s.NameLine))
			twice := TruncateFirstTask(once, NameLineIndent(s.NameLine))
			if once != twice {
				t.Fatalf("truncation not idempotent:\n%q\n%q", once, twice)
			}
		}
	}
}

func TestExtractionSplitsAreLossless(t *testing.T) {
	// Role-file extraction must cover the whole file: contexts + name
	// lines + targets reassemble the original text.
	r := rand.New(rand.NewSource(32))
	for i := 0; i < 50; i++ {
		file := corpus.RoleTaskFile(r, corpus.GalaxyStyle)
		samples := ExtractSamples(corpus.File{Kind: corpus.AnsibleTasks, Text: file})
		if len(samples) == 0 {
			t.Fatal("no samples")
		}
		last := samples[len(samples)-1]
		full := last.Context + last.NameLine + "\n" + last.Target
		want := file
		// The file begins with the document marker, which the first
		// sample's (empty) context omits.
		want = strings.TrimPrefix(want, "---\n")
		got := strings.TrimPrefix(full, "---\n")
		if got != want {
			t.Fatalf("reassembly mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
		}
	}
}

func TestPackFilesQuickInvariants(t *testing.T) {
	// Regardless of window size, packing preserves token order and puts
	// exactly one separator per file.
	r := rand.New(rand.NewSource(33))
	var texts []string
	for i := 0; i < 10; i++ {
		texts = append(texts, corpus.RoleTaskFile(r, corpus.GalaxyStyle))
	}
	tok := trainTok(t, texts)
	for _, window := range []int{4, 16, 64, 257, 1024} {
		packed := PackFiles(tok, texts, window)
		seps, total := 0, 0
		for _, w := range packed {
			if len(w) > window {
				t.Fatalf("window %d: overlong pack %d", window, len(w))
			}
			total += len(w)
			for _, id := range w {
				if id == tok.Sep() {
					seps++
				}
			}
		}
		if seps != len(texts) {
			t.Fatalf("window %d: %d separators for %d files", window, seps, len(texts))
		}
	}
	if PackFiles(tok, texts, 1) != nil {
		t.Error("window 1 should pack nothing")
	}
}
