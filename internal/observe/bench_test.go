package observe

import "testing"

// The disabled (nil) path must be nothing but a pointer test — these
// benches document the cost of leaving instrumentation compiled into a hot
// path. Compare *Nil vs *Live to see the enabled cost too.

func BenchmarkCounterNil(b *testing.B) {
	var c *Counter
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkCounterLive(b *testing.B) {
	c := NewRegistry().Counter("bench_total", "")
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramNil(b *testing.B) {
	var h *Histogram
	for i := 0; i < b.N; i++ {
		h.Observe(0.001)
	}
}

func BenchmarkHistogramLive(b *testing.B) {
	h := NewRegistry().Histogram("bench_seconds", "", nil)
	for i := 0; i < b.N; i++ {
		h.Observe(0.001)
	}
}

func BenchmarkSpanNil(b *testing.B) {
	var t *Tracer
	for i := 0; i < b.N; i++ {
		t.Start("x").End()
	}
}

func BenchmarkSpanLive(b *testing.B) {
	t := NewTracer(NewRegistry(), nil)
	for i := 0; i < b.N; i++ {
		t.Start("x").End()
	}
}
