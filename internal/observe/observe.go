// Package observe is the dependency-free observability layer of the Wisdom
// stack: counters, gauges and latency histograms behind a concurrency-safe
// registry, a Prometheus-text-format exporter (prom.go) and lightweight span
// timers (span.go).
//
// The paper ships Ansible Wisdom as a live service, and a live service is
// operated by its signals: request latency and status, cache hit rates,
// training throughput, generated tokens per second. This package provides
// those signals to every layer (serve, neural, experiments, cmd) without
// pulling in a client library.
//
// # Design
//
// Every instrument is nil-safe: calling Inc, Set or Observe on a nil
// *Counter, *Gauge or *Histogram is a no-op, and a nil *Registry hands out
// nil instruments. "Metrics disabled" therefore costs one pointer test per
// call site — the no-op path benchmarked in internal/neural to stay within
// the <2% overhead budget on Generate. All instruments update through
// sync/atomic, so concurrent writers (parallel batch gradients, RPC
// connections) never contend on a lock.
//
// Typical wiring:
//
//	reg := observe.NewRegistry()
//	reqs := reg.Counter("wisdom_requests_total", "Requests served.",
//	    observe.Label{Key: "proto", Value: "http"})
//	lat := reg.Histogram("wisdom_request_duration_seconds",
//	    "Request latency.", observe.DefBuckets)
//	...
//	reqs.Inc()
//	lat.Observe(time.Since(start).Seconds())
//	reg.WritePrometheus(w) // or http.Handle("/metrics", reg.Handler())
package observe

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one constant key/value pair attached to a metric series.
type Label struct {
	Key   string
	Value string
}

// ---- Counter ----

// Counter is a monotonically increasing count. The zero value is ready to
// use; a nil Counter is a no-op.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add increases the counter by n (negative n is ignored: counters only go
// up).
func (c *Counter) Add(n int) {
	if c == nil || n <= 0 {
		return
	}
	c.v.Add(uint64(n))
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// ---- Gauge ----

// Gauge is a value that can go up and down. The zero value is ready to use;
// a nil Gauge is a no-op.
type Gauge struct {
	bits atomic.Uint64 // math.Float64bits of the value
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add offsets the gauge by delta.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		nv := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, nv) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// ---- Histogram ----

// DefBuckets spans 100µs to 10s, the range of everything this repository
// times: a cached response is tens of microseconds, a cold transformer
// generation a few seconds.
var DefBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
	0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// ExponentialBuckets returns n bucket upper bounds starting at start, each
// factor times the previous. It panics if start <= 0, factor <= 1 or n < 1.
func ExponentialBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("observe: ExponentialBuckets requires start > 0, factor > 1, n >= 1")
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = start
		start *= factor
	}
	return out
}

// Histogram samples observations into cumulative buckets, Prometheus-style.
// A nil Histogram is a no-op.
type Histogram struct {
	bounds []float64       // strictly increasing upper bounds
	counts []atomic.Uint64 // len(bounds)+1; the last is the +Inf overflow
	count  atomic.Uint64
	sum    atomic.Uint64 // math.Float64bits of the running sum
}

func newHistogram(bounds []float64) *Histogram {
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	for i := 1; i < len(bs); i++ {
		if bs[i] == bs[i-1] {
			panic(fmt.Sprintf("observe: duplicate histogram bound %g", bs[i]))
		}
	}
	return &Histogram{bounds: bs, counts: make([]atomic.Uint64, len(bs)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		nv := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, nv) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// snapshot returns cumulative bucket counts aligned with h.bounds plus the
// +Inf bucket, read without tearing the total (the +Inf cumulative count is
// the sum of the per-bucket atomics, not the separate count field, so the
// exported buckets are always internally consistent).
func (h *Histogram) snapshot() (cum []uint64, count uint64) {
	cum = make([]uint64, len(h.counts))
	running := uint64(0)
	for i := range h.counts {
		running += h.counts[i].Load()
		cum[i] = running
	}
	return cum, cum[len(cum)-1]
}

// ---- Registry ----

type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// series is one labelled instance of a metric family.
type series struct {
	labels string // rendered {k="v",...} suffix, "" when unlabelled
	c      *Counter
	g      *Gauge
	h      *Histogram
	fn     func() float64 // callback series (CounterFunc/GaugeFunc)
}

// family groups every series sharing a metric name.
type family struct {
	name   string
	help   string
	kind   metricKind
	series []*series
	byLbl  map[string]*series
}

// Registry is a concurrency-safe collection of metrics. A nil Registry
// hands out nil (no-op) instruments, so callers can thread one pointer
// through and never branch on "metrics enabled".
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

// Counter returns the counter registered under name with the given labels,
// creating it on first use. It panics if name is invalid, already
// registered as a different kind, or registered via CounterFunc.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	return r.getOrCreate(name, help, kindCounter, labels, nil, nil).c
}

// Gauge returns the gauge registered under name with the given labels,
// creating it on first use.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	return r.getOrCreate(name, help, kindGauge, labels, nil, nil).g
}

// Histogram returns the histogram registered under name with the given
// bucket upper bounds (nil means DefBuckets), creating it on first use. It
// panics if the series already exists with different bucket bounds — the
// second caller would otherwise silently record into buckets it never asked
// for.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	if buckets == nil {
		buckets = DefBuckets
	}
	return r.getOrCreate(name, help, kindHistogram, labels, buckets, nil).h
}

// CounterFunc registers a counter whose value is read from fn at export
// time — the bridge for components that keep their own counters (the LRU
// cache's hit/miss/eviction totals). If the series is already registered
// with a callback, the first callback wins; mixing callback and direct
// registration of the same series panics.
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...Label) {
	if r == nil {
		return
	}
	r.getOrCreate(name, help, kindCounter, labels, nil, fn)
}

// GaugeFunc registers a gauge whose value is read from fn at export time,
// with the same re-registration rules as CounterFunc.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	if r == nil {
		return
	}
	r.getOrCreate(name, help, kindGauge, labels, nil, fn)
}

// Unregister removes the series registered under name with exactly the
// given labels, reporting whether one existed. The family disappears from
// the export when its last series goes. It exists for dynamic label sets —
// a router backend that leaves the fleet should stop exporting, and a
// later re-registration of the same series must bind fresh (the
// first-registration-wins rule would otherwise pin callbacks to a departed
// object forever). Direct instruments handed out earlier keep working;
// they just stop being exported.
func (r *Registry) Unregister(name string, labels ...Label) bool {
	if r == nil {
		return false
	}
	lbl := renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	fam, ok := r.fams[name]
	if !ok {
		return false
	}
	s, ok := fam.byLbl[lbl]
	if !ok {
		return false
	}
	delete(fam.byLbl, lbl)
	for i, ss := range fam.series {
		if ss == s {
			fam.series = append(fam.series[:i], fam.series[i+1:]...)
			break
		}
	}
	if len(fam.series) == 0 {
		delete(r.fams, name)
	}
	return true
}

// getOrCreate returns the series for name+labels, creating the family and
// the series' instrument while r.mu is held: a series never becomes visible
// in a half-built state, and concurrent first registrations of the same
// series agree on a single instrument. The instrument fields (c, g, h, fn)
// are immutable once this returns, so readers are synchronized by any later
// acquisition of r.mu rather than a lock around every field access.
func (r *Registry) getOrCreate(name, help string, kind metricKind, labels []Label, buckets []float64, fn func() float64) *series {
	if !validName(name) {
		panic(fmt.Sprintf("observe: invalid metric name %q", name))
	}
	lbl := renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	fam, ok := r.fams[name]
	if !ok {
		fam = &family{name: name, help: help, kind: kind, byLbl: make(map[string]*series)}
		r.fams[name] = fam
	}
	if fam.kind != kind {
		panic(fmt.Sprintf("observe: %s already registered as %s, requested %s", name, fam.kind, kind))
	}
	s, ok := fam.byLbl[lbl]
	if !ok {
		s = &series{labels: lbl}
		switch {
		case fn != nil:
			s.fn = fn
		case kind == kindCounter:
			s.c = &Counter{}
		case kind == kindGauge:
			s.g = &Gauge{}
		default:
			s.h = newHistogram(buckets)
		}
		fam.byLbl[lbl] = s
		fam.series = append(fam.series, s)
		return s
	}
	if (s.fn != nil) != (fn != nil) {
		panic(fmt.Sprintf("observe: %s%s mixes callback and direct registration", name, lbl))
	}
	if s.h != nil && !sameBounds(s.h.bounds, buckets) {
		panic(fmt.Sprintf("observe: %s%s re-registered with different buckets", name, lbl))
	}
	return s
}

// sameBounds reports whether the requested bucket bounds, once normalized
// the way newHistogram normalizes them (sorted), match the existing ones.
func sameBounds(have, requested []float64) bool {
	if len(have) != len(requested) {
		return false
	}
	req := append([]float64(nil), requested...)
	sort.Float64s(req)
	for i := range req {
		if req[i] != have[i] {
			return false
		}
	}
	return true
}

// validName enforces the Prometheus metric-name grammar.
func validName(name string) bool {
	if name == "" {
		return false
	}
	for i, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// renderLabels produces the canonical `{k="v",...}` suffix, keys sorted so
// that the same label set always maps to the same series.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var sb strings.Builder
	sb.WriteByte('{')
	for i, l := range ls {
		if !validName(l.Key) {
			panic(fmt.Sprintf("observe: invalid label name %q", l.Key))
		}
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(l.Key)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabelValue(l.Value))
		sb.WriteByte('"')
	}
	sb.WriteByte('}')
	return sb.String()
}

func escapeLabelValue(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}
