package observe

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// Tracer hands out lightweight span timers. Every finished span feeds a
// per-name latency histogram in the tracer's registry
// (wisdom_span_duration_seconds{span="..."}), is kept in a bounded ring of
// recent spans, and — when a log writer is set — is printed as one line,
// which is what `-trace` wires to stderr.
//
// A nil Tracer is a no-op: Start returns an inert Span whose End costs one
// pointer test, so instrumented code never branches on "tracing enabled".
type Tracer struct {
	reg *Registry
	log io.Writer

	mu     sync.Mutex
	hists  map[string]*Histogram
	recent []SpanRecord
	next   int
}

// SpanRecord is one completed span.
type SpanRecord struct {
	Name     string
	Start    time.Time
	Duration time.Duration
}

// recentCap bounds the in-memory span ring.
const recentCap = 256

// NewTracer returns a tracer recording into reg (may be nil — spans are
// then only ringed/logged) and logging each finished span to log (may be
// nil).
func NewTracer(reg *Registry, log io.Writer) *Tracer {
	return &Tracer{reg: reg, log: log, hists: make(map[string]*Histogram)}
}

// Span is one in-flight timed region. The zero value (and any span from a
// nil tracer) is inert.
type Span struct {
	t     *Tracer
	name  string
	start time.Time
}

// Start begins a span. Nest freely; spans are independent timers, not a
// stack.
func (t *Tracer) Start(name string) Span {
	if t == nil {
		return Span{}
	}
	return Span{t: t, name: name, start: time.Now()}
}

// End finishes the span and returns its duration (0 for inert spans).
func (s Span) End() time.Duration {
	if s.t == nil {
		return 0
	}
	d := time.Since(s.start)
	s.t.record(s.name, s.start, d)
	return d
}

func (t *Tracer) record(name string, start time.Time, d time.Duration) {
	t.histogram(name).Observe(d.Seconds())
	t.mu.Lock()
	if len(t.recent) < recentCap {
		t.recent = append(t.recent, SpanRecord{Name: name, Start: start, Duration: d})
	} else {
		t.recent[t.next] = SpanRecord{Name: name, Start: start, Duration: d}
		t.next = (t.next + 1) % recentCap
	}
	t.mu.Unlock()
	if t.log != nil {
		fmt.Fprintf(t.log, "span %-28s %12.3fms\n", name, float64(d.Microseconds())/1000)
	}
}

// histogram caches the per-name histogram so End stays cheap.
func (t *Tracer) histogram(name string) *Histogram {
	t.mu.Lock()
	h, ok := t.hists[name]
	t.mu.Unlock()
	if ok {
		return h
	}
	h = t.reg.Histogram("wisdom_span_duration_seconds",
		"Duration of traced stages.", DefBuckets, Label{Key: "span", Value: name})
	t.mu.Lock()
	t.hists[name] = h
	t.mu.Unlock()
	return h
}

// Recent returns the retained spans, oldest first.
func (t *Tracer) Recent() []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SpanRecord, 0, len(t.recent))
	if len(t.recent) == recentCap {
		out = append(out, t.recent[t.next:]...)
		out = append(out, t.recent[:t.next]...)
		return out
	}
	return append(out, t.recent...)
}

// Summary aggregates the retained spans per name: count and total time,
// rendered as an aligned table. Useful for one-shot commands that print a
// stage breakdown on exit.
func (t *Tracer) Summary() string {
	if t == nil {
		return ""
	}
	type agg struct {
		name  string
		n     int
		total time.Duration
	}
	byName := map[string]*agg{}
	var order []string
	for _, r := range t.Recent() {
		a, ok := byName[r.Name]
		if !ok {
			a = &agg{name: r.Name}
			byName[r.Name] = a
			order = append(order, r.Name)
		}
		a.n++
		a.total += r.Duration
	}
	if len(order) == 0 {
		return ""
	}
	out := fmt.Sprintf("%-28s %6s %14s %14s\n", "stage", "count", "total", "mean")
	for _, name := range order {
		a := byName[name]
		out += fmt.Sprintf("%-28s %6d %14s %14s\n",
			a.name, a.n, a.total.Round(time.Microsecond), (a.total / time.Duration(a.n)).Round(time.Microsecond))
	}
	return out
}
