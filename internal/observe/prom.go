package observe

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders every registered metric in the Prometheus text
// exposition format (version 0.0.4): families sorted by name, one HELP and
// TYPE line per family, histograms expanded into cumulative _bucket/_sum/
// _count series. A nil registry writes nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	fams := make([]*family, 0, len(r.fams))
	for _, f := range r.fams {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	for _, f := range fams {
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
			return err
		}
		// Lock again briefly to snapshot the series list. The same
		// acquisition publishes each series' instrument fields, which are
		// assigned under r.mu at creation and immutable afterwards;
		// instrument values themselves are atomics and need no lock.
		r.mu.Lock()
		series := append([]*series(nil), f.series...)
		r.mu.Unlock()
		sort.Slice(series, func(i, j int) bool { return series[i].labels < series[j].labels })
		for _, s := range series {
			if err := writeSeries(w, f, s); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeSeries(w io.Writer, f *family, s *series) error {
	switch {
	case s.fn != nil:
		_, err := fmt.Fprintf(w, "%s%s %s\n", f.name, s.labels, formatFloat(s.fn()))
		return err
	case f.kind == kindHistogram:
		h := s.h
		// The buckets and _count come from one snapshot, but _sum is read
		// separately: a scrape racing an Observe can expose a count that
		// includes a sample whose value is not yet in the sum (Observe
		// updates buckets before CASing the sum). That transient skew is
		// the accepted cost of a lock-free histogram; it heals on the next
		// scrape and never corrupts the cumulative bucket series.
		cum, count := h.snapshot()
		for i, bound := range h.bounds {
			le := formatFloat(bound)
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, withLabel(s.labels, "le", le), cum[i]); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, withLabel(s.labels, "le", "+Inf"), count); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", f.name, s.labels, formatFloat(h.Sum())); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count%s %d\n", f.name, s.labels, count)
		return err
	case f.kind == kindCounter:
		_, err := fmt.Fprintf(w, "%s%s %d\n", f.name, s.labels, s.c.Value())
		return err
	default:
		_, err := fmt.Fprintf(w, "%s%s %s\n", f.name, s.labels, formatFloat(s.g.Value()))
		return err
	}
}

// withLabel splices an extra label into an already rendered label suffix.
func withLabel(rendered, key, value string) string {
	extra := key + `="` + escapeLabelValue(value) + `"`
	if rendered == "" {
		return "{" + extra + "}"
	}
	return rendered[:len(rendered)-1] + "," + extra + "}"
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(h string) string {
	h = strings.ReplaceAll(h, `\`, `\\`)
	return strings.ReplaceAll(h, "\n", `\n`)
}

// Handler returns the /metrics HTTP handler serving the registry in the
// Prometheus text format.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}
