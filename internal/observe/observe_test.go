package observe

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounter(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "help")
	c.Inc()
	c.Add(4)
	c.Add(-3) // ignored: counters only go up
	if c.Value() != 5 {
		t.Errorf("counter = %d, want 5", c.Value())
	}
	if again := r.Counter("c_total", "help"); again != c {
		t.Error("re-registration returned a different counter")
	}
}

func TestGauge(t *testing.T) {
	g := NewRegistry().Gauge("g", "help")
	g.Set(2.5)
	g.Add(-1)
	if g.Value() != 1.5 {
		t.Errorf("gauge = %v, want 1.5", g.Value())
	}
}

func TestUnregister(t *testing.T) {
	r := NewRegistry()
	r.CounterFunc("fleet_total", "help", func() float64 { return 1 }, Label{"backend", "a"})
	r.CounterFunc("fleet_total", "help", func() float64 { return 2 }, Label{"backend", "b"})
	r.Gauge("lone", "help").Set(3)

	if !r.Unregister("fleet_total", Label{"backend", "a"}) {
		t.Fatal("Unregister of an existing series returned false")
	}
	if r.Unregister("fleet_total", Label{"backend", "a"}) {
		t.Error("second Unregister of the same series returned true")
	}
	if r.Unregister("fleet_total", Label{"backend", "missing"}) {
		t.Error("Unregister of an unknown label set returned true")
	}
	if r.Unregister("no_such_family") {
		t.Error("Unregister of an unknown family returned true")
	}

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Contains(out, `backend="a"`) {
		t.Errorf("unregistered series still exported:\n%s", out)
	}
	if !strings.Contains(out, `fleet_total{backend="b"} 2`) {
		t.Errorf("sibling series lost:\n%s", out)
	}

	// Removing the last series removes the family, so the same name can be
	// re-registered with a fresh callback (the rejoin-after-remove case).
	if !r.Unregister("fleet_total", Label{"backend", "b"}) {
		t.Fatal("Unregister of the last series returned false")
	}
	r.CounterFunc("fleet_total", "help", func() float64 { return 9 }, Label{"backend", "b"})
	buf.Reset()
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `fleet_total{backend="b"} 9`) {
		t.Errorf("re-registered series kept the old callback:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "lone 3") {
		t.Errorf("unrelated family disturbed:\n%s", buf.String())
	}

	// Nil receiver: a no-op, like every other Registry method.
	var nilReg *Registry
	if nilReg.Unregister("x") {
		t.Error("nil registry Unregister returned true")
	}
}

func TestHistogram(t *testing.T) {
	h := NewRegistry().Histogram("h_seconds", "help", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Errorf("count = %d, want 5", h.Count())
	}
	if got, want := h.Sum(), 56.05; got < want-1e-9 || got > want+1e-9 {
		t.Errorf("sum = %v, want %v", got, want)
	}
	cum, count := h.snapshot()
	wantCum := []uint64{1, 3, 4, 5}
	for i, w := range wantCum {
		if cum[i] != w {
			t.Errorf("cum[%d] = %d, want %d", i, cum[i], w)
		}
	}
	if count != 5 {
		t.Errorf("snapshot count = %d", count)
	}
}

func TestHistogramBoundaryGoesToLowerBucket(t *testing.T) {
	// Prometheus buckets are le (inclusive) bounds.
	h := NewRegistry().Histogram("hb", "help", []float64{1, 2})
	h.Observe(1)
	cum, _ := h.snapshot()
	if cum[0] != 1 {
		t.Errorf("observation equal to bound landed in bucket %v, want le=1", cum)
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x_total", "")
	g := r.Gauge("x", "")
	h := r.Histogram("x_seconds", "", nil)
	r.CounterFunc("cf_total", "", func() float64 { return 1 })
	r.GaugeFunc("gf", "", func() float64 { return 1 })
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Error("nil instruments recorded values")
	}
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil || buf.Len() != 0 {
		t.Errorf("nil registry wrote %q, err %v", buf.String(), err)
	}

	var tr *Tracer
	sp := tr.Start("stage")
	if d := sp.End(); d != 0 {
		t.Errorf("nil tracer span duration = %v", d)
	}
	if tr.Recent() != nil || tr.Summary() != "" {
		t.Error("nil tracer retained spans")
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "")
	defer func() {
		if recover() == nil {
			t.Error("registering a gauge over a counter did not panic")
		}
	}()
	r.Gauge("m", "")
}

func TestInvalidNamePanics(t *testing.T) {
	r := NewRegistry()
	for _, bad := range []string{"", "1abc", "with space", "dash-ed", "ütf"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("name %q accepted", bad)
				}
			}()
			r.Counter(bad, "")
		}()
	}
}

func TestLabelOrderCanonical(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("l_total", "", Label{Key: "a", Value: "1"}, Label{Key: "b", Value: "2"})
	b := r.Counter("l_total", "", Label{Key: "b", Value: "2"}, Label{Key: "a", Value: "1"})
	if a != b {
		t.Error("label order created distinct series")
	}
}

func TestExponentialBuckets(t *testing.T) {
	got := ExponentialBuckets(1, 10, 3)
	want := []float64{1, 10, 100}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("buckets = %v, want %v", got, want)
		}
	}
}

func TestConcurrentInstruments(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("cc_total", "")
	g := r.Gauge("cg", "")
	h := r.Histogram("ch_seconds", "", nil)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(0.001)
				// Concurrent get-or-create of the same series must be safe.
				r.Counter("cc_total", "")
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Errorf("counter = %d, want 8000", c.Value())
	}
	if g.Value() != 8000 {
		t.Errorf("gauge = %v, want 8000", g.Value())
	}
	if h.Count() != 8000 {
		t.Errorf("histogram count = %d, want 8000", h.Count())
	}
}

// TestConcurrentFirstRegistration exercises the case the registry contract
// is strictest about: many goroutines registering the same series for the
// FIRST time while a scraper exports. Under -race this fails if instrument
// creation ever escapes the registry lock; without -race it fails if two
// racing registrations get distinct instruments (increments silently lost).
func TestConcurrentFirstRegistration(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				r.Counter("fresh_total", "", Label{Key: "i", Value: string(rune('a' + i%16))}).Inc()
				r.Histogram("fresh_seconds", "", nil, Label{Key: "i", Value: string(rune('a' + i%16))}).Observe(0.001)
				var buf bytes.Buffer
				if err := r.WritePrometheus(&buf); err != nil {
					t.Error(err)
				}
			}
		}(w)
	}
	wg.Wait()
	var total uint64
	for i := 0; i < 16; i++ {
		total += r.Counter("fresh_total", "", Label{Key: "i", Value: string(rune('a' + i))}).Value()
	}
	if want := uint64(8 * 200); total != want {
		t.Errorf("counted %d increments across series, want %d (lost to a racing registration)", total, want)
	}
}

func TestHistogramBucketMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Histogram("hm_seconds", "", []float64{1, 2, 3})
	// Same bounds in a different order are the same series.
	r.Histogram("hm_seconds", "", []float64{3, 2, 1})
	defer func() {
		if recover() == nil {
			t.Error("re-registering with different buckets did not panic")
		}
	}()
	r.Histogram("hm_seconds", "", []float64{1, 2})
}

func TestMixedCallbackAndDirectPanics(t *testing.T) {
	r := NewRegistry()
	r.CounterFunc("mix_total", "", func() float64 { return 1 })
	defer func() {
		if recover() == nil {
			t.Error("direct registration over a callback series did not panic")
		}
	}()
	r.Counter("mix_total", "")
}

func TestTracerSpans(t *testing.T) {
	reg := NewRegistry()
	var log bytes.Buffer
	tr := NewTracer(reg, &log)
	sp := tr.Start("build")
	time.Sleep(time.Millisecond)
	if d := sp.End(); d <= 0 {
		t.Errorf("duration = %v", d)
	}
	tr.Start("build").End()
	rec := tr.Recent()
	if len(rec) != 2 || rec[0].Name != "build" {
		t.Errorf("recent = %+v", rec)
	}
	if !strings.Contains(log.String(), "span build") {
		t.Errorf("log = %q", log.String())
	}
	if sum := tr.Summary(); !strings.Contains(sum, "build") || !strings.Contains(sum, "2") {
		t.Errorf("summary = %q", sum)
	}
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `wisdom_span_duration_seconds_count{span="build"} 2`) {
		t.Errorf("exposition missing span histogram:\n%s", buf.String())
	}
}

func TestTracerRingBound(t *testing.T) {
	tr := NewTracer(nil, nil)
	for i := 0; i < recentCap+10; i++ {
		tr.Start("s").End()
	}
	if got := len(tr.Recent()); got != recentCap {
		t.Errorf("retained %d spans, want %d", got, recentCap)
	}
}
