package observe

import (
	"bufio"
	"fmt"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
)

// parsePromText is a strict checker for the Prometheus text exposition
// format: every non-comment line must be `name{labels} value`, every TYPE
// comment must precede its samples, and names must be valid. It returns the
// sample map.
func parsePromText(t *testing.T, text string) map[string]float64 {
	t.Helper()
	samples := map[string]float64{}
	typed := map[string]string{}
	sc := bufio.NewScanner(strings.NewReader(text))
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(line)
			if len(fields) != 4 {
				t.Fatalf("malformed TYPE line %q", line)
			}
			switch fields[3] {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				t.Fatalf("unknown metric type in %q", line)
			}
			typed[fields[2]] = fields[3]
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("unexpected comment %q", line)
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("sample line %q has no value", line)
		}
		key, valStr := line[:sp], line[sp+1:]
		val, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			t.Fatalf("sample %q: bad value: %v", line, err)
		}
		name := key
		if i := strings.IndexByte(key, '{'); i >= 0 {
			if !strings.HasSuffix(key, "}") {
				t.Fatalf("sample %q: unterminated labels", line)
			}
			name = key[:i]
		}
		base := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if strings.HasSuffix(name, suffix) {
				if _, ok := typed[strings.TrimSuffix(name, suffix)]; ok {
					base = strings.TrimSuffix(name, suffix)
				}
			}
		}
		if _, ok := typed[base]; !ok {
			t.Fatalf("sample %q has no preceding TYPE line", line)
		}
		if !validName(name) {
			t.Fatalf("invalid metric name in %q", line)
		}
		samples[key] = val
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return samples
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("wisdom_requests_total", "Requests served.", Label{Key: "proto", Value: "http"}).Add(3)
	r.Counter("wisdom_requests_total", "Requests served.", Label{Key: "proto", Value: "rpc"}).Inc()
	r.Gauge("wisdom_cache_entries", "Cache entries.").Set(42)
	h := r.Histogram("wisdom_request_duration_seconds", "Latency.", []float64{0.01, 0.1, 1})
	h.Observe(0.005)
	h.Observe(0.5)
	r.GaugeFunc("wisdom_tokens_per_second", "Rate.", func() float64 { return 12.5 })

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	samples := parsePromText(t, out)

	want := map[string]float64{
		`wisdom_requests_total{proto="http"}`:               3,
		`wisdom_requests_total{proto="rpc"}`:                1,
		`wisdom_cache_entries`:                              42,
		`wisdom_request_duration_seconds_bucket{le="0.01"}`: 1,
		`wisdom_request_duration_seconds_bucket{le="0.1"}`:  1,
		`wisdom_request_duration_seconds_bucket{le="1"}`:    2,
		`wisdom_request_duration_seconds_bucket{le="+Inf"}`: 2,
		`wisdom_request_duration_seconds_count`:             2,
		`wisdom_tokens_per_second`:                          12.5,
	}
	for k, v := range want {
		if samples[k] != v {
			t.Errorf("%s = %v, want %v\nfull output:\n%s", k, samples[k], v, out)
		}
	}
	if got := samples[`wisdom_request_duration_seconds_sum`]; got < 0.5049 || got > 0.5051 {
		t.Errorf("sum = %v", got)
	}
	// Families must come out sorted by name.
	first := strings.Index(out, "wisdom_cache_entries")
	second := strings.Index(out, "wisdom_request_duration_seconds")
	third := strings.Index(out, "wisdom_requests_total")
	if !(first < second && second < third) {
		t.Errorf("families not sorted:\n%s", out)
	}
}

func TestHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("up_total", "").Inc()
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "up_total 1") {
		t.Errorf("body = %q", rec.Body.String())
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("esc_total", "", Label{Key: "v", Value: "a\"b\\c\nd"}).Inc()
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `esc_total{v="a\"b\\c\nd"} 1`) {
		t.Errorf("escaping wrong: %q", sb.String())
	}
}

// ExampleRegistry_WritePrometheus shows the wiring a server uses.
func ExampleRegistry_WritePrometheus() {
	r := NewRegistry()
	r.Counter("demo_requests_total", "Requests served.").Add(2)
	var sb strings.Builder
	_ = r.WritePrometheus(&sb)
	fmt.Print(sb.String())
	// Output:
	// # HELP demo_requests_total Requests served.
	// # TYPE demo_requests_total counter
	// demo_requests_total 2
}
