package neural

import "testing"

// benchConfig is the decode-engine benchmark model: the small Throughput
// configuration from the experiments suite.
var benchConfig = Config{Vocab: 512, Ctx: 64, Dim: 96, Heads: 4, Layers: 4, Seed: 1}

func benchModel(b *testing.B) *Model {
	b.Helper()
	m, err := NewModel(benchConfig)
	if err != nil {
		b.Fatal(err)
	}
	return m
}

// BenchmarkStep measures one single-row decode step. Steady-state it must
// run allocation-free: the caches are preallocated at context capacity and
// all intermediates live in the scratch arena.
func BenchmarkStep(b *testing.B) {
	m := benchModel(b)
	st := m.newGenState()
	st.step(1) // allocate scratch + logits up front
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if st.pos == m.cfg.Ctx {
			b.StopTimer()
			st.reset()
			st.step(1)
			b.StartTimer()
		}
		st.step(2)
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "tok/s")
}

// BenchmarkStepBatch8 measures one batched decode step advancing 8
// sequences; per-op cost should grow far slower than 8x the single-row
// step because the projection weights are traversed once per step.
func BenchmarkStepBatch8(b *testing.B) {
	const B = 8
	m := benchModel(b)
	states := make([]*genState, B)
	toks := make([]int, B)
	for r := range states {
		states[r] = m.newGenState()
		toks[r] = r + 1
	}
	bs := m.newBatchScratch(B)
	m.stepBatch(states, toks, bs) // allocate per-state logits up front
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if states[0].pos == m.cfg.Ctx {
			b.StopTimer()
			for _, st := range states {
				st.reset()
			}
			m.stepBatch(states, toks, bs)
			b.StartTimer()
		}
		m.stepBatch(states, toks, bs)
	}
	b.ReportMetric(float64(b.N*B)/b.Elapsed().Seconds(), "tok/s")
}

const (
	benchBeamWidth  = 4
	benchBeamMaxNew = 24
)

var benchBeamPrefix = []int{1, 2, 3, 4, 5, 6, 7, 8}

// BenchmarkBeamDecode measures the KV-cached beam decoder at width 4.
func BenchmarkBeamDecode(b *testing.B) {
	m := benchModel(b)
	opts := BeamOptions{Width: benchBeamWidth, StopToken: -1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.beamCached(benchBeamPrefix, benchBeamMaxNew, opts)
	}
	b.ReportMetric(float64(b.N*benchBeamMaxNew)/b.Elapsed().Seconds(), "tok/s")
}

// BenchmarkBeamDecodeUncached measures the pre-engine reference beam (full
// forward per beam per step) on the same request, the baseline for the
// cached decoder's speedup.
func BenchmarkBeamDecodeUncached(b *testing.B) {
	m := benchModel(b)
	opts := BeamOptions{Width: benchBeamWidth, StopToken: -1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.beamFullForward(benchBeamPrefix, benchBeamMaxNew, opts)
	}
	b.ReportMetric(float64(b.N*benchBeamMaxNew)/b.Elapsed().Seconds(), "tok/s")
}

// BenchmarkGenerateBatch8 measures 8 concurrent generations through the
// batched engine, the serving micro-batch shape.
func BenchmarkGenerateBatch8(b *testing.B) {
	m := benchModel(b)
	const maxNew = 24
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		reqs := make([]BatchRequest, 8)
		for r := range reqs {
			reqs[r] = BatchRequest{
				Prefix: []int{1, 2, 3, 4, 5, 6, 7, r + 1},
				MaxNew: maxNew,
				Opts:   GenOptions{StopToken: -1},
			}
		}
		m.GenerateBatch(reqs)
	}
	b.ReportMetric(float64(b.N*8*maxNew)/b.Elapsed().Seconds(), "tok/s")
}
