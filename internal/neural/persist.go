package neural

import (
	"encoding/gob"
	"fmt"
	"io"
)

// snapshot is the gob wire format of a model: its architecture plus every
// parameter tensor in registration order.
type snapshot struct {
	Cfg     Config
	Weights [][]float64
}

// Save serialises the model (architecture + weights) with encoding/gob.
// Optimizer state is not saved; training can resume with a fresh Adam.
func (m *Model) Save(w io.Writer) error {
	snap := snapshot{Cfg: m.cfg}
	for _, p := range m.params {
		snap.Weights = append(snap.Weights, p.W)
	}
	return gob.NewEncoder(w).Encode(snap)
}

// Load restores a model saved by Save.
func Load(r io.Reader) (*Model, error) {
	var snap snapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("neural: decode: %w", err)
	}
	m, err := NewModel(snap.Cfg)
	if err != nil {
		return nil, err
	}
	if len(snap.Weights) != len(m.params) {
		return nil, fmt.Errorf("neural: snapshot has %d tensors, model needs %d",
			len(snap.Weights), len(m.params))
	}
	for i, w := range snap.Weights {
		if len(w) != len(m.params[i].W) {
			return nil, fmt.Errorf("neural: tensor %s has %d weights, want %d",
				m.params[i].Name, len(w), len(m.params[i].W))
		}
		copy(m.params[i].W, w)
	}
	return m, nil
}
