package neural

import (
	"math/rand"
	"testing"
)

// TestCachedBeamMatchesUncached pins the cached beam decoder to the
// full-forward reference across widths, length penalties, and stop tokens.
// Both run on a trained model so logit ties (which the bounded top-k must
// break exactly like the reference's stable sort) are exercised on a
// realistic distribution.
func TestCachedBeamMatchesUncached(t *testing.T) {
	m := trainedPatternModel(t)
	prefixes := [][]int{{1}, {1, 2, 3}, {4, 5}}
	for _, width := range []int{1, 2, 4, 6} {
		for _, penalty := range []float64{0, 0.7} {
			for _, stop := range []int{-1, 5} {
				for _, prefix := range prefixes {
					maxNew := m.cfg.Ctx - len(prefix) + 1 // deepest in-cache request
					opts := BeamOptions{Width: width, LengthPenalty: penalty, StopToken: stop}
					want := m.beamFullForward(prefix, maxNew, opts)
					got := m.beamCached(prefix, maxNew, opts)
					if len(got) != len(want) {
						t.Fatalf("w=%d p=%v stop=%d prefix=%v: cached %v vs uncached %v",
							width, penalty, stop, prefix, got, want)
					}
					for i := range got {
						if got[i] != want[i] {
							t.Fatalf("w=%d p=%v stop=%d prefix=%v: cached %v vs uncached %v",
								width, penalty, stop, prefix, got, want)
						}
					}
				}
			}
		}
	}
}

// TestBeamTruncationEdge checks the dispatch boundary: the deepest request
// that fits the cache decodes on the cached path, one token more falls back
// to the full-forward path, and both agree with the reference at the edge.
func TestBeamTruncationEdge(t *testing.T) {
	m := trainedPatternModel(t)
	prefix := []int{1, 2, 3}
	opts := BeamOptions{Width: 4, StopToken: -1}
	fit := m.cfg.Ctx - len(prefix) + 1
	for _, maxNew := range []int{fit, fit + 1, fit + 4} {
		want := m.beamFullForward(prefix, maxNew, opts)
		got := m.GenerateBeam(prefix, maxNew, opts)
		if len(got) != len(want) {
			t.Fatalf("maxNew=%d: %v vs reference %v", maxNew, got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("maxNew=%d: %v vs reference %v", maxNew, got, want)
			}
		}
	}
}

// TestStepBatchMatchesStep feeds the same token streams through the batched
// and the single-row kernels and requires bit-identical logits at every
// position — the property that makes serve-level micro-batching invisible
// to callers.
func TestStepBatchMatchesStep(t *testing.T) {
	m, err := NewModel(Config{Vocab: 24, Ctx: 16, Dim: 16, Heads: 4, Layers: 3, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	streams := [][]int{
		{3, 14, 1, 5, 9, 2},
		{7, 7, 7, 7, 7, 7},
		{0, 23, 11, 8, 2, 19},
	}
	B := len(streams)

	// Serial reference: one state per stream, single-row steps.
	want := make([][][]float64, B)
	for r, toks := range streams {
		st := m.newGenState()
		for _, tok := range toks {
			logits := st.step(tok)
			want[r] = append(want[r], append([]float64(nil), logits...))
		}
	}

	states := make([]*genState, B)
	for r := range states {
		states[r] = m.newGenState()
	}
	bs := m.newBatchScratch(B)
	toks := make([]int, B)
	for pos := 0; pos < len(streams[0]); pos++ {
		for r := range streams {
			toks[r] = streams[r][pos]
		}
		m.stepBatch(states, toks, bs)
		for r, st := range states {
			for i, v := range st.logits {
				if v != want[r][pos][i] {
					t.Fatalf("row %d pos %d logit %d: batched %v vs serial %v",
						r, pos, i, v, want[r][pos][i])
				}
			}
		}
	}
}

// TestGenerateBatchMatchesSerial runs a heterogeneous batch — different
// prefix lengths, budgets, greedy and sampled rows, a stop-token row, a
// stop-func row, and an overflow row that takes the solo fallback — and
// requires every row to equal its serial GenerateCached counterpart.
func TestGenerateBatchMatchesSerial(t *testing.T) {
	m, err := NewModel(Config{Vocab: 24, Ctx: 24, Dim: 16, Heads: 2, Layers: 2, Seed: 32})
	if err != nil {
		t.Fatal(err)
	}
	mkReqs := func() []BatchRequest {
		return []BatchRequest{
			{Prefix: []int{7, 3, 11, 2}, MaxNew: 10, Opts: GenOptions{StopToken: -1}},
			{Prefix: []int{5}, MaxNew: 6, Opts: GenOptions{StopToken: -1}},
			{Prefix: []int{1, 2, 3, 4, 5, 6, 7, 8}, MaxNew: 4, Opts: GenOptions{StopToken: -1}},
			{Prefix: []int{9, 9}, MaxNew: 12, Opts: GenOptions{
				Temperature: 0.8, TopK: 5, StopToken: -1,
				Rand: rand.New(rand.NewSource(17)),
			}},
			{Prefix: []int{2, 4}, MaxNew: 10, Opts: GenOptions{StopToken: 3}},
			{Prefix: []int{6, 1}, MaxNew: 10, Opts: GenOptions{
				StopToken: -1,
				Stop:      func(g []int) bool { return len(g) >= 2 },
			}},
			// Overflow row: prefix+MaxNew exceeds Ctx, takes the solo path.
			{Prefix: []int{1, 2, 3, 4}, MaxNew: 24, Opts: GenOptions{StopToken: -1}},
			{Prefix: nil, MaxNew: 4, Opts: GenOptions{StopToken: -1}},
		}
	}
	batched := m.GenerateBatch(mkReqs())
	serialReqs := mkReqs()
	for i := range serialReqs {
		r := &serialReqs[i]
		want := m.GenerateCached(r.Prefix, r.MaxNew, r.Opts)
		got := batched[i]
		if len(got) != len(want) {
			t.Fatalf("row %d: batched %v vs serial %v", i, got, want)
		}
		for j := range got {
			if got[j] != want[j] {
				t.Fatalf("row %d: batched %v vs serial %v", i, got, want)
			}
		}
	}
}

// TestGenerateBatchSingleRow checks the degenerate batch of one.
func TestGenerateBatchSingleRow(t *testing.T) {
	m, err := NewModel(Config{Vocab: 16, Ctx: 16, Dim: 8, Heads: 2, Layers: 1, Seed: 33})
	if err != nil {
		t.Fatal(err)
	}
	want := m.GenerateCached([]int{4, 2}, 6, GenOptions{StopToken: -1})
	got := m.GenerateBatch([]BatchRequest{
		{Prefix: []int{4, 2}, MaxNew: 6, Opts: GenOptions{StopToken: -1}},
	})
	if len(got) != 1 || len(got[0]) != len(want) {
		t.Fatalf("batched %v vs serial %v", got, want)
	}
	for i := range want {
		if got[0][i] != want[i] {
			t.Fatalf("batched %v vs serial %v", got[0], want)
		}
	}
}
