package neural

import (
	"math"
	"math/rand"
	"testing"
)

func tinyConfig() Config {
	return Config{Vocab: 11, Ctx: 8, Dim: 8, Heads: 2, Layers: 2, Seed: 1}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Vocab: 1, Ctx: 8, Dim: 8, Heads: 2, Layers: 1},
		{Vocab: 10, Ctx: 0, Dim: 8, Heads: 2, Layers: 1},
		{Vocab: 10, Ctx: 8, Dim: 7, Heads: 2, Layers: 1}, // dim % heads
		{Vocab: 10, Ctx: 8, Dim: 8, Heads: 2, Layers: 0},
	}
	for _, c := range bad {
		if _, err := NewModel(c); err == nil {
			t.Errorf("NewModel(%+v) accepted invalid config", c)
		}
	}
}

func TestNumParams(t *testing.T) {
	m, err := NewModel(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	c := tinyConfig()
	hid := 4 * c.Dim
	perLayer := 2*c.Dim + 4*c.Dim*c.Dim + 2*c.Dim + c.Dim*hid + hid + hid*c.Dim + c.Dim
	want := c.Vocab*c.Dim + c.Ctx*c.Dim + c.Layers*perLayer + 2*c.Dim
	if got := m.NumParams(); got != want {
		t.Errorf("NumParams = %d, want %d", got, want)
	}
}

// TestGradientCheck verifies analytic gradients against central finite
// differences for a sample of parameters in every tensor.
func TestGradientCheck(t *testing.T) {
	m, err := NewModel(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	tokens := []int{3, 1, 4, 1, 5, 9, 2, 6}

	for _, p := range m.Params() {
		p.zeroGrad()
	}
	m.lossAndBackward(tokens, nil)

	const eps = 1e-5
	r := rand.New(rand.NewSource(2))
	for _, p := range m.Params() {
		// Sample up to 4 coordinates per tensor.
		nSamples := 4
		if len(p.W) < nSamples {
			nSamples = len(p.W)
		}
		for s := 0; s < nSamples; s++ {
			i := r.Intn(len(p.W))
			orig := p.W[i]
			p.W[i] = orig + eps
			lp := m.Loss(tokens, nil)
			p.W[i] = orig - eps
			lm := m.Loss(tokens, nil)
			p.W[i] = orig
			numeric := (lp - lm) / (2 * eps)
			analytic := p.G[i]
			diff := math.Abs(numeric - analytic)
			scale := math.Abs(numeric) + math.Abs(analytic) + 1e-8
			if diff/scale > 1e-4 && diff > 1e-7 {
				t.Errorf("%s[%d]: analytic %.8g vs numeric %.8g", p.Name, i, analytic, numeric)
			}
		}
	}
}

func TestGradientCheckMasked(t *testing.T) {
	m, err := NewModel(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	tokens := []int{3, 1, 4, 1, 5, 9}
	mask := []bool{false, false, true, true, true}
	for _, p := range m.Params() {
		p.zeroGrad()
	}
	m.lossAndBackward(tokens, mask)
	p := m.tokEmb
	const eps = 1e-5
	for _, i := range []int{0, 17, 42} {
		orig := p.W[i]
		p.W[i] = orig + eps
		lp := m.Loss(tokens, mask)
		p.W[i] = orig - eps
		lm := m.Loss(tokens, mask)
		p.W[i] = orig
		numeric := (lp - lm) / (2 * eps)
		if math.Abs(numeric-p.G[i]) > 1e-4*(math.Abs(numeric)+1e-3) {
			t.Errorf("masked grad tok_emb[%d]: analytic %.8g vs numeric %.8g", i, p.G[i], numeric)
		}
	}
}

func TestTrainingReducesLoss(t *testing.T) {
	m, err := NewModel(Config{Vocab: 16, Ctx: 12, Dim: 16, Heads: 2, Layers: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// A deterministic pattern the model must memorise.
	seqs := [][]int{
		{1, 2, 3, 4, 5, 6, 7, 8},
		{2, 3, 4, 5, 6, 7, 8, 9},
		{1, 2, 3, 4, 5, 6, 7, 8},
		{3, 4, 5, 6, 7, 8, 9, 10},
	}
	before := m.Loss(seqs[0], nil)
	m.Train(seqs, TrainConfig{Epochs: 200, LR: 3e-3, BatchSize: 4, Seed: 7})
	after := m.Loss(seqs[0], nil)
	if after >= before {
		t.Fatalf("loss did not decrease: %v -> %v", before, after)
	}
	if after > 0.5 {
		t.Errorf("model failed to memorise pattern: loss %v", after)
	}
}

func TestGreedyGenerationLearnsPattern(t *testing.T) {
	m, err := NewModel(Config{Vocab: 16, Ctx: 12, Dim: 16, Heads: 2, Layers: 2, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	seqs := [][]int{
		{1, 2, 3, 4, 5, 6},
		{1, 2, 3, 4, 5, 6},
		{1, 2, 3, 4, 5, 6},
	}
	m.Train(seqs, TrainConfig{Epochs: 80, LR: 3e-3, BatchSize: 3, Seed: 7})
	out := m.Generate([]int{1, 2, 3}, 3, GenOptions{StopToken: -1})
	if len(out) != 3 || out[0] != 4 || out[1] != 5 || out[2] != 6 {
		t.Errorf("generated %v, want [4 5 6]", out)
	}
}

func TestGenerateSlidingWindow(t *testing.T) {
	m, err := NewModel(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Prefix longer than ctx must not panic and must emit maxNew tokens.
	prefix := []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 1, 2, 3}
	out := m.Generate(prefix, 4, GenOptions{StopToken: -1})
	if len(out) != 4 {
		t.Errorf("generated %d tokens, want 4", len(out))
	}
}

func TestGenerateStopFunc(t *testing.T) {
	m, err := NewModel(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	out := m.Generate([]int{1, 2}, 10, GenOptions{
		StopToken: -1,
		Stop:      func(g []int) bool { return len(g) >= 3 },
	})
	if len(out) != 3 {
		t.Errorf("stop func ignored: got %d tokens", len(out))
	}
}

func TestSamplingReproducible(t *testing.T) {
	m, err := NewModel(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	gen := func() []int {
		return m.Generate([]int{1, 2, 3}, 5, GenOptions{
			Temperature: 1.0, TopK: 5, StopToken: -1,
			Rand: rand.New(rand.NewSource(11)),
		})
	}
	a, b := gen(), gen()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged: %v vs %v", a, b)
		}
	}
}

func TestDeterministicInit(t *testing.T) {
	a, _ := NewModel(tinyConfig())
	b, _ := NewModel(tinyConfig())
	for i, p := range a.Params() {
		q := b.Params()[i]
		for j := range p.W {
			if p.W[j] != q.W[j] {
				t.Fatalf("param %s[%d] differs across same-seed inits", p.Name, j)
			}
		}
	}
}

func TestPerplexityFiniteAndPositive(t *testing.T) {
	m, _ := NewModel(tinyConfig())
	pp := m.Perplexity([]int{1, 2, 3, 4})
	if math.IsNaN(pp) || pp <= 1 {
		t.Errorf("perplexity = %v", pp)
	}
	if !math.IsInf(m.Perplexity([]int{1}), 1) {
		t.Error("single-token perplexity should be +Inf")
	}
}

func TestLossMaskExcludesPositions(t *testing.T) {
	m, _ := NewModel(tinyConfig())
	tokens := []int{1, 2, 3, 4, 5}
	full := m.Loss(tokens, nil)
	onlyLast := m.Loss(tokens, []bool{false, false, false, true})
	if full == onlyLast {
		t.Error("mask had no effect on loss")
	}
	if m.Loss(tokens, []bool{false, false, false, false}) != 0 {
		t.Error("all-masked loss should be 0")
	}
}

func TestSchedules(t *testing.T) {
	if LinearDecay(0, 10) != 1 || LinearDecay(5, 10) != 0.5 {
		t.Error("LinearDecay wrong")
	}
	if CosineDecay(0, 10) != 1 {
		t.Error("CosineDecay start wrong")
	}
	if v := CosineDecay(10, 10); math.Abs(v) > 1e-12 {
		t.Errorf("CosineDecay end = %v", v)
	}
	if ConstantLR(3, 10) != 1 {
		t.Error("ConstantLR wrong")
	}
	// Monotone non-increasing.
	for s := 1; s < 10; s++ {
		if LinearDecay(s, 10) > LinearDecay(s-1, 10) {
			t.Error("LinearDecay not monotone")
		}
		if CosineDecay(s, 10) > CosineDecay(s-1, 10) {
			t.Error("CosineDecay not monotone")
		}
	}
}

func TestAdamStepChangesWeights(t *testing.T) {
	p := newParam("w", 4)
	p.W = []float64{1, 2, 3, 4}
	p.G = []float64{0.1, -0.1, 0.2, 0}
	opt := NewAdam([]*Param{p})
	opt.Step(0.01)
	if p.W[0] >= 1 || p.W[1] <= 2 {
		t.Errorf("Adam step direction wrong: %v", p.W)
	}
	if p.W[3] != 4 {
		t.Errorf("zero-grad weight moved: %v", p.W[3])
	}
	for _, g := range p.G {
		if g != 0 {
			t.Error("gradients not zeroed after step")
		}
	}
}

func TestWeightDecayShrinksWeights(t *testing.T) {
	p := newParam("w", 2)
	p.W = []float64{10, -10}
	opt := NewAdam([]*Param{p})
	opt.WeightDecay = 0.1
	// Zero gradients: the only movement is decay toward zero.
	opt.Step(0.1)
	if math.Abs(p.W[0]) >= 10 || math.Abs(p.W[1]) >= 10 {
		t.Errorf("weights not decayed: %v", p.W)
	}
	if p.W[0] <= 0 || p.W[1] >= 0 {
		t.Errorf("decay overshot: %v", p.W)
	}
}

func TestGradClipping(t *testing.T) {
	p := newParam("w", 3)
	p.G = []float64{30, 40, 0} // norm 50
	opt := NewAdam([]*Param{p})
	if n := opt.GradNorm(); math.Abs(n-50) > 1e-9 {
		t.Fatalf("GradNorm = %v", n)
	}
	opt.ClipNorm = 5
	before := append([]float64(nil), p.W...)
	opt.Step(1)
	// With clipping the first Adam step magnitude is bounded by ~lr.
	for j := range p.W {
		if math.Abs(p.W[j]-before[j]) > 1.01 {
			t.Errorf("clipped step too large at %d: %v -> %v", j, before[j], p.W[j])
		}
	}
}

func TestTrainingWithRegularisation(t *testing.T) {
	m, err := NewModel(Config{Vocab: 16, Ctx: 12, Dim: 16, Heads: 2, Layers: 1, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	seqs := [][]int{{1, 2, 3, 4, 5, 6}, {1, 2, 3, 4, 5, 6}}
	before := m.Loss(seqs[0], nil)
	m.Train(seqs, TrainConfig{
		Epochs: 40, LR: 3e-3, BatchSize: 2, Seed: 7,
		WeightDecay: 0.01, ClipNorm: 1.0,
	})
	after := m.Loss(seqs[0], nil)
	if after >= before {
		t.Errorf("regularised training did not reduce loss: %v -> %v", before, after)
	}
}
