package neural

import (
	"context"
	"fmt"
	"runtime"
	"testing"
)

// benchProcs are the worker counts the kernel scaling curve is measured at.
var benchProcs = []int{1, 2, 4, 8}

// withBenchProcs pins both the Go scheduler and the kernel worker budget to
// procs for one sub-benchmark, restoring both afterwards. On hosts with
// fewer CPUs than procs the extra workers time-slice; the reported curve is
// still the honest measurement for that hardware.
func withBenchProcs(b *testing.B, procs int, fn func(b *testing.B)) {
	prevMax := runtime.GOMAXPROCS(procs)
	prevKern := SetKernelProcs(procs)
	defer func() {
		runtime.GOMAXPROCS(prevMax)
		SetKernelProcs(prevKern)
	}()
	fn(b)
}

// BenchmarkStepParallel measures the single-row decode step across kernel
// worker counts: the intra-row tiled matmul / per-head attention scaling
// curve. tok/s at procs=1 is the serial baseline (BenchmarkStep's shape).
func BenchmarkStepParallel(b *testing.B) {
	for _, procs := range benchProcs {
		b.Run(fmt.Sprintf("procs=%d", procs), func(b *testing.B) {
			withBenchProcs(b, procs, func(b *testing.B) {
				m := benchModel(b)
				st := m.newGenState()
				st.step(1) // allocate scratch + logits up front
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if st.pos == m.cfg.Ctx {
						b.StopTimer()
						st.reset()
						st.step(1)
						b.StartTimer()
					}
					st.step(2)
				}
				b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "tok/s")
			})
		})
	}
}

// BenchmarkStepBatchParallel measures the 8-row batched decode step across
// kernel worker counts: the row-parallel fork/join scaling curve on top of
// the weight-streaming amortisation BenchmarkStepBatch8 already measures.
func BenchmarkStepBatchParallel(b *testing.B) {
	const B = 8
	for _, procs := range benchProcs {
		b.Run(fmt.Sprintf("procs=%d", procs), func(b *testing.B) {
			withBenchProcs(b, procs, func(b *testing.B) {
				m := benchModel(b)
				states := make([]*genState, B)
				toks := make([]int, B)
				for r := range states {
					states[r] = m.newGenState()
					toks[r] = r + 1
				}
				bs := m.newBatchScratch(B)
				m.stepBatch(states, toks, bs)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if states[0].pos == m.cfg.Ctx {
						b.StopTimer()
						for _, st := range states {
							st.reset()
						}
						m.stepBatch(states, toks, bs)
						b.StartTimer()
					}
					m.stepBatch(states, toks, bs)
				}
				b.ReportMetric(float64(b.N*B)/b.Elapsed().Seconds(), "tok/s")
			})
		})
	}
}

// BenchmarkEngineMixed measures end-to-end continuous-batched serving: a
// saturated engine decoding staggered-length requests, reporting aggregate
// tok/s and the cumulative batch occupancy the scheduler sustained.
func BenchmarkEngineMixed(b *testing.B) {
	m := benchModel(b)
	e := m.NewEngine(EngineConfig{MaxBatch: 8, Queue: 64})
	defer e.Close(context.Background())
	b.ReportAllocs()
	b.ResetTimer()
	total := 0
	for i := 0; i < b.N; i++ {
		tickets := make([]*Ticket, 0, 16)
		for r := 0; r < 16; r++ {
			maxNew := 8 + (r%4)*8 // 8..32 tokens, staggered retirements
			tk, err := e.Submit(context.Background(), []int{1, 2, r%7 + 1}, maxNew, GenOptions{StopToken: -1})
			if err != nil {
				b.Fatal(err)
			}
			tickets = append(tickets, tk)
		}
		for _, tk := range tickets {
			total += len(tk.Wait())
		}
	}
	b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "tok/s")
	b.ReportMetric(e.Stats().Occupancy(), "occupancy")
}
