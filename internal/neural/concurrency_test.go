package neural

import (
	"math/rand"
	"sync"
	"testing"
)

// TestConcurrentDecodePathsMatchSerial is the serving contract for this
// package: after training, a *Model is immutable, so any number of
// goroutines may decode through the full-forward, KV-cached and beam paths
// at once. Run under -race, this also proves no decode path touches shared
// mutable state (each GenerateCached call allocates its own genState; each
// sampling call owns its own rand.Rand).
func TestConcurrentDecodePathsMatchSerial(t *testing.T) {
	m, err := NewModel(Config{Vocab: 24, Ctx: 32, Dim: 16, Heads: 2, Layers: 2, Seed: 29})
	if err != nil {
		t.Fatal(err)
	}
	prefixes := [][]int{{7, 3, 11, 2}, {5, 6}, {1}, {9, 8, 7, 6, 5}}

	type decoded struct{ greedy, cached, sampled, beam []int }
	decode := func(prefix []int, seed int64) decoded {
		return decoded{
			greedy: m.Generate(prefix, 8, GenOptions{StopToken: -1}),
			cached: m.GenerateCached(prefix, 8, GenOptions{StopToken: -1}),
			sampled: m.GenerateCached(prefix, 8, GenOptions{
				Temperature: 0.9, TopK: 6, StopToken: -1,
				Rand: rand.New(rand.NewSource(seed)),
			}),
			beam: m.GenerateBeam(prefix, 8, BeamOptions{Width: 3, StopToken: -1}),
		}
	}

	want := make([]decoded, len(prefixes))
	for i, p := range prefixes {
		want[i] = decode(p, int64(i))
	}

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for rep := 0; rep < 5; rep++ {
				i := (w + rep) % len(prefixes)
				got := decode(prefixes[i], int64(i))
				assertSeq(t, "greedy", got.greedy, want[i].greedy)
				assertSeq(t, "cached", got.cached, want[i].cached)
				assertSeq(t, "sampled", got.sampled, want[i].sampled)
				assertSeq(t, "beam", got.beam, want[i].beam)
			}
		}(w)
	}
	wg.Wait()
}

func assertSeq(t *testing.T, path string, got, want []int) {
	t.Helper()
	if len(got) != len(want) {
		t.Errorf("%s: concurrent %v != serial %v", path, got, want)
		return
	}
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("%s: concurrent %v != serial %v", path, got, want)
			return
		}
	}
}

// TestConcurrentLossReads covers the evaluation path the experiments
// package fans out across goroutines.
func TestConcurrentLossReads(t *testing.T) {
	m, err := NewModel(Config{Vocab: 16, Ctx: 12, Dim: 8, Heads: 2, Layers: 1, Seed: 30})
	if err != nil {
		t.Fatal(err)
	}
	seq := []int{1, 2, 3, 4, 5, 6}
	want := m.Loss(seq, nil)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				if got := m.Loss(seq, nil); got != want {
					t.Errorf("concurrent loss %v != serial %v", got, want)
					return
				}
			}
		}()
	}
	wg.Wait()
}
