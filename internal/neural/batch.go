package neural

import (
	"math"
	"time"
)

// batchScratch is the working memory of a batched decode step: the same
// buffers as decodeScratch but B rows wide, so the projection matmuls run
// once over the whole batch instead of once per sequence. Allocated once
// per GenerateBatch call (or engine) and reused every step.
type batchScratch struct {
	x, a, q, k, v, att, ao, bIn, mo, hf []float64 // B x Dim, row-major
	h1                                  []float64 // B x MLPHidden
	// scores holds one Ctx-wide attention-score row per kernel worker the
	// arena was sized for, so rows attended in parallel never share a
	// buffer. scoreRows is that worker capacity.
	scores    []float64
	scoreRows int
}

// newBatchScratch sizes an arena for batches of up to b rows.
func (m *Model) newBatchScratch(b int) *batchScratch {
	d := b * m.cfg.Dim
	rows := KernelProcs()
	if rows > b {
		rows = b
	}
	if rows < 1 {
		rows = 1
	}
	return &batchScratch{
		x: make([]float64, d), a: make([]float64, d), q: make([]float64, d),
		k: make([]float64, d), v: make([]float64, d), att: make([]float64, d),
		ao: make([]float64, d), bIn: make([]float64, d), mo: make([]float64, d),
		hf:        make([]float64, d),
		h1:        make([]float64, b*m.cfg.MLPHidden),
		scores:    make([]float64, rows*m.cfg.Ctx),
		scoreRows: rows,
	}
}

// stepBatch advances B independent decode states by one token each. The
// six per-layer projections (q, k, v, attention output, both MLP halves)
// run as one matmul over B rows rather than B row-vector products, so the
// weight matrices — the dominant memory traffic of decoding — are streamed
// through the cache once per step instead of once per sequence. Attention
// and layer norms stay per-row because each state attends over its own
// cache at its own position; rows at different positions batch fine.
//
// Per-row arithmetic (accumulation order included) is identical to the
// single-row step, so a batched decode is bit-for-bit equivalent to
// stepping each state serially. Each state's logits buffer receives its
// next-token distribution. States must belong to m and bs must have been
// sized for at least len(states) rows.
//
// Rows are independent within a layer (each state attends over its own
// cache), so each layer runs as one fork/join over row chunks across the
// kernel workers: a chunk's owner layer-norms its rows, runs the six
// projections over them (one matmul per chunk keeps the weight streaming
// amortisation), and attends each row with its worker-private score buffer.
// A one-row batch delegates to the single-row step kernel, which
// parallelizes inside the row instead.
func (m *Model) stepBatch(states []*genState, toks []int, bs *batchScratch) {
	B := len(states)
	if B == 1 {
		states[0].step(toks[0])
		return
	}
	cfg := m.cfg
	d := cfg.Dim
	procs := KernelProcs()
	if procs > bs.scoreRows {
		procs = bs.scoreRows
	}
	var stepStart time.Time
	if m.obs != nil {
		stepStart = time.Now()
	}

	for r, s := range states {
		x := bs.x[r*d : (r+1)*d]
		te := m.tokEmb.W[toks[r]*d : (toks[r]+1)*d]
		pe := m.posEmb.W[s.pos*d : (s.pos+1)*d]
		for i := 0; i < d; i++ {
			x[i] = te[i] + pe[i]
		}
	}

	for l, b := range m.blocks {
		if procs <= 1 {
			m.stepBatchLayer(states, bs, b, l, 0, 0, B)
			continue
		}
		parallelFor(procs, B, 1, func(w, lo, hi int) {
			m.stepBatchLayer(states, bs, b, l, w, lo, hi)
		})
	}

	maxPos := 0
	for _, s := range states {
		s.pos++
		if s.pos > maxPos {
			maxPos = s.pos
		}
		if s.logits == nil {
			s.logits = make([]float64, cfg.Vocab)
		}
	}
	if procs <= 1 {
		m.stepBatchHead(states, bs, 0, B)
	} else {
		parallelFor(procs, B, 1, func(_, lo, hi int) {
			m.stepBatchHead(states, bs, lo, hi)
		})
	}
	if m.obs != nil {
		m.obs.KVCachePositions.Set(float64(maxPos))
		m.obs.KVCacheOccupancy.Set(float64(maxPos) / float64(cfg.Ctx))
		m.obs.DecodeSteps.Add(B)
		m.obs.StepDuration.Observe(time.Since(stepStart).Seconds())
	}
}

// stepBatchLayer runs one transformer block over batch rows [lo, hi) — the
// per-chunk body of stepBatch's fork/join. w selects the worker-private
// attention score row; serial callers pass chunk (0, 0, B) directly so the
// allocation-free path never builds a closure.
func (m *Model) stepBatchLayer(states []*genState, bs *batchScratch, b *block, l, w, lo, hi int) {
	cfg := m.cfg
	d := cfg.Dim
	hid := cfg.MLPHidden
	heads, dh := cfg.Heads, d/cfg.Heads
	scale := 1 / math.Sqrt(float64(dh))
	for r := lo; r < hi; r++ {
		lnRowInto(bs.a[r*d:(r+1)*d], bs.x[r*d:(r+1)*d], b.ln1g.W, b.ln1b.W)
	}
	matmulRows(bs.q, bs.a, lo, hi, d, b.wq.W, d)
	matmulRows(bs.k, bs.a, lo, hi, d, b.wk.W, d)
	matmulRows(bs.v, bs.a, lo, hi, d, b.wv.W, d)
	for r := lo; r < hi; r++ {
		s := states[r]
		T := s.pos + 1
		kl := s.k[l][:T*d]
		vl := s.v[l][:T*d]
		s.k[l], s.v[l] = kl, vl
		copy(kl[s.pos*d:], bs.k[r*d:(r+1)*d])
		copy(vl[s.pos*d:], bs.v[r*d:(r+1)*d])
		attendRow(bs.att[r*d:(r+1)*d], bs.q[r*d:(r+1)*d], kl, vl,
			bs.scores[w*cfg.Ctx:w*cfg.Ctx+T], heads, dh, d, scale)
	}
	// Fused residual update: x += att @ wo (no bias).
	matmulAddBiasRows(bs.x, bs.ao, bs.att, lo, hi, d, b.wo.W, d, nil)
	for r := lo; r < hi; r++ {
		lnRowInto(bs.bIn[r*d:(r+1)*d], bs.x[r*d:(r+1)*d], b.ln2g.W, b.ln2b.W)
	}
	// Fused MLP: h1 = gelu(bIn @ w1 + b1), then x += h1 @ w2 + b2.
	matmulBiasGeluRows(bs.h1, bs.bIn, lo, hi, d, b.w1.W, hid, b.b1.W)
	matmulAddBiasRows(bs.x, bs.mo, bs.h1, lo, hi, hid, b.w2.W, d, b.b2.W)
}

// stepBatchHead runs the final layer norm and tied-embedding logit
// projection for batch rows [lo, hi).
func (m *Model) stepBatchHead(states []*genState, bs *batchScratch, lo, hi int) {
	cfg := m.cfg
	d := cfg.Dim
	for r := lo; r < hi; r++ {
		lnRowInto(bs.hf[r*d:(r+1)*d], bs.x[r*d:(r+1)*d], m.lnfg.W, m.lnfb.W)
		projectLogitsRange(states[r].logits, bs.hf[r*d:(r+1)*d], m.tokEmb.W, d, 0, cfg.Vocab)
	}
}

// BatchRequest is one sequence of a batched generation call.
type BatchRequest struct {
	Prefix []int
	MaxNew int
	Opts   GenOptions
}

// batchRow is the per-request decode state machine of GenerateBatch.
type batchRow struct {
	req     *BatchRequest
	st      *genState
	out     []int
	outSlot int // index into the results slice
	fed     int // tokens fed into the cache so far
	next    int // token to feed on the upcoming step
}

// GenerateBatch decodes every request together, advancing all live rows one
// token per stepBatch call. Requests prime and finish independently — mixed
// prefix lengths, MaxNew budgets, stop conditions, sampling options
// (each row consumes only its own Opts.Rand) and streaming hooks (each
// row's Opts.OnToken fires as its token is picked, and a row whose
// Opts.Cancel closes retires alone while the rest keep decoding) batch
// fine, and each row's
// output is token-for-token what GenerateCached would have produced alone
// (see TestGenerateBatchMatchesSerial). Rows that cannot decode purely in
// cache — an empty prefix, a non-positive MaxNew, or prefix+MaxNew
// overflowing the context window — fall back to a solo GenerateCached call.
// Results are returned in request order.
func (m *Model) GenerateBatch(reqs []BatchRequest) [][]int {
	outs := make([][]int, len(reqs))
	active := make([]*batchRow, 0, len(reqs))
	for i := range reqs {
		r := &reqs[i]
		if len(r.Prefix) == 0 || r.MaxNew <= 0 || len(r.Prefix)+r.MaxNew-1 > m.cfg.Ctx {
			outs[i] = m.GenerateCached(r.Prefix, r.MaxNew, r.Opts)
			continue
		}
		active = append(active, &batchRow{
			req: r, st: m.newGenState(), next: r.Prefix[0],
			out: make([]int, 0, r.MaxNew),
		})
		// outs entry is filled when the row finishes; remember its slot.
		active[len(active)-1].outSlot = i
	}
	if len(active) == 0 {
		return outs
	}

	var start time.Time
	if m.obs != nil {
		start = time.Now()
	}
	bs := m.newBatchScratch(len(active))
	states := make([]*genState, len(active))
	toks := make([]int, len(active))
	total := 0
	for len(active) > 0 {
		states = states[:len(active)]
		toks = toks[:len(active)]
		for i, row := range active {
			states[i] = row.st
			toks[i] = row.next
		}
		m.stepBatch(states, toks, bs)

		live := active[:0]
		for _, row := range active {
			row.fed++
			opts := row.req.Opts
			// A cancelled row retires with the tokens it has produced; the
			// remaining rows keep decoding (their batch just gets narrower).
			if opts.cancelled() {
				row.finish(outs, &total)
				continue
			}
			if row.fed < len(row.req.Prefix) {
				row.next = row.req.Prefix[row.fed]
				live = append(live, row)
				continue
			}
			tok := pickToken(row.st.logits, opts)
			row.out = append(row.out, tok)
			if opts.OnToken != nil {
				opts.OnToken(tok)
			}
			if opts.StopToken > 0 && tok == opts.StopToken {
				row.finish(outs, &total)
				continue
			}
			if opts.Stop != nil && opts.Stop(row.out) {
				row.finish(outs, &total)
				continue
			}
			if len(row.out) == row.req.MaxNew {
				row.finish(outs, &total)
				continue
			}
			row.next = tok
			live = append(live, row)
		}
		active = live
	}
	if m.obs != nil {
		m.obs.recordGeneration(total, time.Since(start))
	}
	return outs
}

// finish publishes a completed row's output.
func (r *batchRow) finish(outs [][]int, total *int) {
	outs[r.outSlot] = r.out
	*total += len(r.out)
}
