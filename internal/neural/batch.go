package neural

import (
	"math"
	"time"
)

// batchScratch is the working memory of a batched decode step: the same
// buffers as decodeScratch but B rows wide, so the projection matmuls run
// once over the whole batch instead of once per sequence. Allocated once
// per GenerateBatch call and reused every step.
type batchScratch struct {
	x, a, q, k, v, att, ao, bIn, mo, hf []float64 // B x Dim, row-major
	h1                                  []float64 // B x MLPHidden
	scores                              []float64 // Ctx, reused row by row
}

// newBatchScratch sizes an arena for batches of up to b rows.
func (m *Model) newBatchScratch(b int) *batchScratch {
	d := b * m.cfg.Dim
	return &batchScratch{
		x: make([]float64, d), a: make([]float64, d), q: make([]float64, d),
		k: make([]float64, d), v: make([]float64, d), att: make([]float64, d),
		ao: make([]float64, d), bIn: make([]float64, d), mo: make([]float64, d),
		hf:     make([]float64, d),
		h1:     make([]float64, b*m.cfg.MLPHidden),
		scores: make([]float64, m.cfg.Ctx),
	}
}

// stepBatch advances B independent decode states by one token each. The
// six per-layer projections (q, k, v, attention output, both MLP halves)
// run as one matmul over B rows rather than B row-vector products, so the
// weight matrices — the dominant memory traffic of decoding — are streamed
// through the cache once per step instead of once per sequence. Attention
// and layer norms stay per-row because each state attends over its own
// cache at its own position; rows at different positions batch fine.
//
// Per-row arithmetic (accumulation order included) is identical to the
// single-row step, so a batched decode is bit-for-bit equivalent to
// stepping each state serially. Each state's logits buffer receives its
// next-token distribution. States must belong to m and bs must have been
// sized for at least len(states) rows.
func (m *Model) stepBatch(states []*genState, toks []int, bs *batchScratch) {
	B := len(states)
	cfg := m.cfg
	d := cfg.Dim
	hid := cfg.MLPHidden
	heads, dh := cfg.Heads, d/cfg.Heads
	scale := 1 / math.Sqrt(float64(dh))
	var stepStart time.Time
	if m.obs != nil {
		stepStart = time.Now()
	}

	for r, s := range states {
		x := bs.x[r*d : (r+1)*d]
		te := m.tokEmb.W[toks[r]*d : (toks[r]+1)*d]
		pe := m.posEmb.W[s.pos*d : (s.pos+1)*d]
		for i := 0; i < d; i++ {
			x[i] = te[i] + pe[i]
		}
	}

	for l, b := range m.blocks {
		for r := 0; r < B; r++ {
			lnRowInto(bs.a[r*d:(r+1)*d], bs.x[r*d:(r+1)*d], b.ln1g.W, b.ln1b.W)
		}
		matmulInto(bs.q, bs.a, B, d, b.wq.W, d)
		matmulInto(bs.k, bs.a, B, d, b.wk.W, d)
		matmulInto(bs.v, bs.a, B, d, b.wv.W, d)
		for r, s := range states {
			T := s.pos + 1
			kl := s.k[l][:T*d]
			vl := s.v[l][:T*d]
			s.k[l], s.v[l] = kl, vl
			copy(kl[s.pos*d:], bs.k[r*d:(r+1)*d])
			copy(vl[s.pos*d:], bs.v[r*d:(r+1)*d])
			attendRow(bs.att[r*d:(r+1)*d], bs.q[r*d:(r+1)*d], kl, vl,
				bs.scores[:T], heads, dh, d, scale)
		}
		matmulInto(bs.ao, bs.att, B, d, b.wo.W, d)
		for r := 0; r < B; r++ {
			x := bs.x[r*d : (r+1)*d]
			ao := bs.ao[r*d : (r+1)*d]
			for i := 0; i < d; i++ {
				x[i] += ao[i]
			}
		}

		for r := 0; r < B; r++ {
			lnRowInto(bs.bIn[r*d:(r+1)*d], bs.x[r*d:(r+1)*d], b.ln2g.W, b.ln2b.W)
		}
		matmulInto(bs.h1, bs.bIn, B, d, b.w1.W, hid)
		for r := 0; r < B; r++ {
			h := bs.h1[r*hid : (r+1)*hid]
			for j := range h {
				h[j] = gelu(h[j] + b.b1.W[j])
			}
		}
		matmulInto(bs.mo, bs.h1, B, hid, b.w2.W, d)
		for r := 0; r < B; r++ {
			x := bs.x[r*d : (r+1)*d]
			mo := bs.mo[r*d : (r+1)*d]
			for i := 0; i < d; i++ {
				x[i] += mo[i] + b.b2.W[i]
			}
		}
	}

	maxPos := 0
	for r, s := range states {
		s.pos++
		if s.pos > maxPos {
			maxPos = s.pos
		}
		if s.logits == nil {
			s.logits = make([]float64, cfg.Vocab)
		}
		lnRowInto(bs.hf[r*d:(r+1)*d], bs.x[r*d:(r+1)*d], m.lnfg.W, m.lnfb.W)
		projectLogits(s.logits, bs.hf[r*d:(r+1)*d], m.tokEmb.W, d)
	}
	if m.obs != nil {
		m.obs.KVCachePositions.Set(float64(maxPos))
		m.obs.KVCacheOccupancy.Set(float64(maxPos) / float64(cfg.Ctx))
		m.obs.DecodeSteps.Add(B)
		m.obs.StepDuration.Observe(time.Since(stepStart).Seconds())
	}
}

// BatchRequest is one sequence of a batched generation call.
type BatchRequest struct {
	Prefix []int
	MaxNew int
	Opts   GenOptions
}

// batchRow is the per-request decode state machine of GenerateBatch.
type batchRow struct {
	req     *BatchRequest
	st      *genState
	out     []int
	outSlot int // index into the results slice
	fed     int // tokens fed into the cache so far
	next    int // token to feed on the upcoming step
}

// GenerateBatch decodes every request together, advancing all live rows one
// token per stepBatch call. Requests prime and finish independently — mixed
// prefix lengths, MaxNew budgets, stop conditions, sampling options
// (each row consumes only its own Opts.Rand) and streaming hooks (each
// row's Opts.OnToken fires as its token is picked, and a row whose
// Opts.Cancel closes retires alone while the rest keep decoding) batch
// fine, and each row's
// output is token-for-token what GenerateCached would have produced alone
// (see TestGenerateBatchMatchesSerial). Rows that cannot decode purely in
// cache — an empty prefix, a non-positive MaxNew, or prefix+MaxNew
// overflowing the context window — fall back to a solo GenerateCached call.
// Results are returned in request order.
func (m *Model) GenerateBatch(reqs []BatchRequest) [][]int {
	outs := make([][]int, len(reqs))
	active := make([]*batchRow, 0, len(reqs))
	for i := range reqs {
		r := &reqs[i]
		if len(r.Prefix) == 0 || r.MaxNew <= 0 || len(r.Prefix)+r.MaxNew-1 > m.cfg.Ctx {
			outs[i] = m.GenerateCached(r.Prefix, r.MaxNew, r.Opts)
			continue
		}
		active = append(active, &batchRow{
			req: r, st: m.newGenState(), next: r.Prefix[0],
			out: make([]int, 0, r.MaxNew),
		})
		// outs entry is filled when the row finishes; remember its slot.
		active[len(active)-1].outSlot = i
	}
	if len(active) == 0 {
		return outs
	}

	var start time.Time
	if m.obs != nil {
		start = time.Now()
	}
	bs := m.newBatchScratch(len(active))
	states := make([]*genState, len(active))
	toks := make([]int, len(active))
	total := 0
	for len(active) > 0 {
		states = states[:len(active)]
		toks = toks[:len(active)]
		for i, row := range active {
			states[i] = row.st
			toks[i] = row.next
		}
		m.stepBatch(states, toks, bs)

		live := active[:0]
		for _, row := range active {
			row.fed++
			opts := row.req.Opts
			// A cancelled row retires with the tokens it has produced; the
			// remaining rows keep decoding (their batch just gets narrower).
			if opts.cancelled() {
				row.finish(outs, &total)
				continue
			}
			if row.fed < len(row.req.Prefix) {
				row.next = row.req.Prefix[row.fed]
				live = append(live, row)
				continue
			}
			tok := pickToken(row.st.logits, opts)
			row.out = append(row.out, tok)
			if opts.OnToken != nil {
				opts.OnToken(tok)
			}
			if opts.StopToken > 0 && tok == opts.StopToken {
				row.finish(outs, &total)
				continue
			}
			if opts.Stop != nil && opts.Stop(row.out) {
				row.finish(outs, &total)
				continue
			}
			if len(row.out) == row.req.MaxNew {
				row.finish(outs, &total)
				continue
			}
			row.next = tok
			live = append(live, row)
		}
		active = live
	}
	if m.obs != nil {
		m.obs.recordGeneration(total, time.Since(start))
	}
	return outs
}

// finish publishes a completed row's output.
func (r *batchRow) finish(outs [][]int, total *int) {
	outs[r.outSlot] = r.out
	*total += len(r.out)
}
