package neural

import (
	"math"
	"math/rand"
	"testing"
)

func TestCachedMatchesFullForward(t *testing.T) {
	m, err := NewModel(Config{Vocab: 24, Ctx: 16, Dim: 16, Heads: 4, Layers: 3, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	tokens := []int{3, 14, 1, 5, 9, 2, 6, 5}

	// Per-position logits must match the batch forward exactly.
	tr := m.forward(tokens)
	st := m.newGenState()
	for pos, tok := range tokens {
		got := st.step(tok)
		want := m.logitsAt(tr, pos)
		for i := range got {
			if math.Abs(got[i]-want[i]) > 1e-9 {
				t.Fatalf("pos %d logit %d: cached %v vs full %v", pos, i, got[i], want[i])
			}
		}
	}
}

func TestGenerateCachedMatchesGenerate(t *testing.T) {
	m, err := NewModel(Config{Vocab: 24, Ctx: 32, Dim: 16, Heads: 2, Layers: 2, Seed: 22})
	if err != nil {
		t.Fatal(err)
	}
	prefix := []int{7, 3, 11, 2}
	full := m.Generate(prefix, 10, GenOptions{StopToken: -1})
	cached := m.GenerateCached(prefix, 10, GenOptions{StopToken: -1})
	if len(full) != len(cached) {
		t.Fatalf("lengths differ: %v vs %v", full, cached)
	}
	for i := range full {
		if full[i] != cached[i] {
			t.Fatalf("outputs differ at %d: %v vs %v", i, full, cached)
		}
	}
}

func TestGenerateCachedSamplingReproducible(t *testing.T) {
	m, err := NewModel(Config{Vocab: 24, Ctx: 32, Dim: 16, Heads: 2, Layers: 2, Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	gen := func() []int {
		return m.GenerateCached([]int{5, 6}, 8, GenOptions{
			Temperature: 0.9, TopK: 6, StopToken: -1,
			Rand: rand.New(rand.NewSource(4)),
		})
	}
	a, b := gen(), gen()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same-seed sampling diverged: %v vs %v", a, b)
		}
	}
}

func TestGenerateCachedOverflowWindowed(t *testing.T) {
	m, err := NewModel(Config{Vocab: 16, Ctx: 8, Dim: 8, Heads: 2, Layers: 1, Seed: 24})
	if err != nil {
		t.Fatal(err)
	}
	// prefix+maxNew exceeds ctx: the windowed decode path must emit maxNew
	// tokens without panicking (it re-primes the cache instead of falling
	// back to the quadratic full-forward loop).
	prefix := []int{1, 2, 3, 4, 5, 6}
	out := m.GenerateCached(prefix, 6, GenOptions{StopToken: -1})
	if len(out) != 6 {
		t.Errorf("windowed decode generated %d tokens, want 6", len(out))
	}
}

func TestGenerateCachedWindowedPrefixMatchesGenerate(t *testing.T) {
	// In the overflow regime, cached decoding stays identical to Generate
	// until the first token whose conditioning window would differ — i.e.
	// while prefix+generated still fits the context.
	m, err := NewModel(Config{Vocab: 24, Ctx: 12, Dim: 16, Heads: 2, Layers: 2, Seed: 26})
	if err != nil {
		t.Fatal(err)
	}
	prefix := []int{3, 9, 1, 4}
	const maxNew = 20
	full := m.Generate(prefix, maxNew, GenOptions{StopToken: -1})
	cached := m.GenerateCached(prefix, maxNew, GenOptions{StopToken: -1})
	if len(cached) != maxNew {
		t.Fatalf("windowed decode generated %d tokens, want %d", len(cached), maxNew)
	}
	same := m.cfg.Ctx - len(prefix)
	for i := 0; i < same; i++ {
		if full[i] != cached[i] {
			t.Fatalf("token %d diverged inside the shared window: %v vs %v",
				i, full[:same], cached[:same])
		}
	}
}

func TestGenerateCachedExactFitMatchesGenerate(t *testing.T) {
	// The equivalence boundary: prefix+maxNew-1 == Ctx still decodes fully
	// in cache and must match Generate token for token; one token more
	// enters the windowed regime and must still emit maxNew tokens.
	m, err := NewModel(Config{Vocab: 24, Ctx: 16, Dim: 16, Heads: 2, Layers: 2, Seed: 27})
	if err != nil {
		t.Fatal(err)
	}
	prefix := []int{5, 2, 8, 1}
	fit := m.cfg.Ctx - len(prefix) + 1 // len(prefix)+fit-1 == Ctx
	full := m.Generate(prefix, fit, GenOptions{StopToken: -1})
	cached := m.GenerateCached(prefix, fit, GenOptions{StopToken: -1})
	if len(full) != len(cached) {
		t.Fatalf("exact-fit lengths differ: %v vs %v", full, cached)
	}
	for i := range full {
		if full[i] != cached[i] {
			t.Fatalf("exact-fit outputs differ at %d: %v vs %v", i, full, cached)
		}
	}
	over := m.GenerateCached(prefix, fit+1, GenOptions{StopToken: -1})
	if len(over) != fit+1 {
		t.Fatalf("one past the boundary generated %d tokens, want %d", len(over), fit+1)
	}
}

func TestGenerateCachedStops(t *testing.T) {
	m, err := NewModel(Config{Vocab: 16, Ctx: 32, Dim: 8, Heads: 2, Layers: 1, Seed: 25})
	if err != nil {
		t.Fatal(err)
	}
	out := m.GenerateCached([]int{1, 2}, 10, GenOptions{
		StopToken: -1,
		Stop:      func(g []int) bool { return len(g) >= 3 },
	})
	if len(out) != 3 {
		t.Errorf("stop func ignored: %d tokens", len(out))
	}
}

func BenchmarkGenerateFullForward(b *testing.B) {
	m, _ := NewModel(Config{Vocab: 256, Ctx: 128, Dim: 64, Heads: 4, Layers: 2, Seed: 1})
	prefix := []int{1, 2, 3, 4}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Generate(prefix, 64, GenOptions{StopToken: -1})
	}
}

func BenchmarkGenerateKVCached(b *testing.B) {
	m, _ := NewModel(Config{Vocab: 256, Ctx: 128, Dim: 64, Heads: 4, Layers: 2, Seed: 1})
	prefix := []int{1, 2, 3, 4}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.GenerateCached(prefix, 64, GenOptions{StopToken: -1})
	}
}
