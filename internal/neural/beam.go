package neural

import (
	"math"
	"sort"
	"time"
)

// BeamOptions control beam-search decoding.
type BeamOptions struct {
	// Width is the number of hypotheses kept per step (default 4).
	Width int
	// LengthPenalty > 0 divides each hypothesis score by len^penalty,
	// countering the short-output bias (0 disables).
	LengthPenalty float64
	// StopToken ends a hypothesis when generated (-1 disables).
	StopToken int
}

// beamHyp is one live hypothesis.
type beamHyp struct {
	tokens  []int // generated suffix only
	logProb float64
	done    bool
}

func (h beamHyp) score(penalty float64) float64 {
	if penalty <= 0 || len(h.tokens) == 0 {
		return h.logProb
	}
	return h.logProb / math.Pow(float64(len(h.tokens)), penalty)
}

// GenerateBeam extends prefix by up to maxNew tokens with beam search and
// returns the best hypothesis's new tokens. The paper's evaluation uses
// greedy decoding and names beam search as an expected improvement; this
// implements that extension.
func (m *Model) GenerateBeam(prefix []int, maxNew int, opts BeamOptions) []int {
	var start time.Time
	if m.obs != nil {
		start = time.Now()
	}
	if opts.Width <= 0 {
		opts.Width = 4
	}
	beams := []beamHyp{{}}
	for step := 0; step < maxNew; step++ {
		var next []beamHyp
		alive := false
		for _, h := range beams {
			if h.done {
				next = append(next, h)
				continue
			}
			alive = true
			seq := append(append([]int(nil), prefix...), h.tokens...)
			if len(seq) > m.cfg.Ctx {
				seq = seq[len(seq)-m.cfg.Ctx:]
			}
			tr := m.forward(seq)
			logits := m.logitsAt(tr, len(seq)-1)
			for tok, lp := range logSoftmax(logits) {
				cand := beamHyp{
					tokens:  append(append([]int(nil), h.tokens...), tok),
					logProb: h.logProb + lp,
					done:    opts.StopToken >= 0 && tok == opts.StopToken,
				}
				next = append(next, cand)
			}
		}
		if !alive {
			break
		}
		sort.SliceStable(next, func(i, j int) bool {
			return next[i].score(opts.LengthPenalty) > next[j].score(opts.LengthPenalty)
		})
		if len(next) > opts.Width {
			next = next[:opts.Width]
		}
		beams = next
	}
	best := beams[0]
	for _, h := range beams[1:] {
		if h.score(opts.LengthPenalty) > best.score(opts.LengthPenalty) {
			best = h
		}
	}
	if m.obs != nil {
		m.obs.recordGeneration(len(best.tokens), time.Since(start))
	}
	return best.tokens
}

// logSoftmax converts logits to log-probabilities.
func logSoftmax(logits []float64) []float64 {
	maxl := math.Inf(-1)
	for _, l := range logits {
		if l > maxl {
			maxl = l
		}
	}
	sum := 0.0
	for _, l := range logits {
		sum += math.Exp(l - maxl)
	}
	logZ := maxl + math.Log(sum)
	out := make([]float64, len(logits))
	for i, l := range logits {
		out[i] = l - logZ
	}
	return out
}
