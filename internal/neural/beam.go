package neural

import (
	"math"
	"sort"
	"time"
)

// BeamOptions control beam-search decoding.
type BeamOptions struct {
	// Width is the number of hypotheses kept per step (default 4).
	Width int
	// LengthPenalty > 0 divides each hypothesis score by len^penalty,
	// countering the short-output bias (0 disables).
	LengthPenalty float64
	// StopToken ends a hypothesis when generated (-1 disables).
	StopToken int
}

// beamScore is the ranking score of a hypothesis with n generated tokens.
func beamScore(logProb float64, n int, penalty float64) float64 {
	if penalty <= 0 || n == 0 {
		return logProb
	}
	return logProb / math.Pow(float64(n), penalty)
}

// GenerateBeam extends prefix by up to maxNew tokens with beam search and
// returns the best hypothesis's new tokens. The paper's evaluation uses
// greedy decoding and names beam search as an expected improvement; this
// implements that extension.
//
// When prefix+maxNew fits the context window, decoding runs on forked KV
// caches: each step costs one cached token step per live beam (plus an
// O(positions) cache copy per surviving fork) instead of a full forward
// over the whole sequence per beam. Requests that overflow the window fall
// back to the windowed full-forward path, whose left-truncation semantics
// the cached caches cannot reproduce. Both paths produce identical tokens
// on the shared domain (see TestCachedBeamMatchesUncached).
func (m *Model) GenerateBeam(prefix []int, maxNew int, opts BeamOptions) []int {
	if opts.Width <= 0 {
		opts.Width = 4
	}
	var start time.Time
	if m.obs != nil {
		start = time.Now()
	}
	var out []int
	// The last generated token is never fed back through the cache, so the
	// deepest hypothesis holds len(prefix)+maxNew-1 positions.
	if len(prefix) > 0 && maxNew > 0 && len(prefix)+maxNew-1 <= m.cfg.Ctx {
		out = m.beamCached(prefix, maxNew, opts)
	} else {
		out = m.beamFullForward(prefix, maxNew, opts)
	}
	if m.obs != nil {
		m.obs.recordGeneration(len(out), time.Since(start))
	}
	return out
}

// beamSlot is one live hypothesis of the cached beam decoder.
type beamSlot struct {
	st      *genState // nil once done (its cache is recycled)
	tokens  []int
	logProb float64
	done    bool
}

// beamCand is one candidate in the bounded top-k selection.
type beamCand struct {
	parent  int // index into the current beam list
	tok     int // -1 carries an already-finished hypothesis forward
	logProb float64
	score   float64
}

// topK is a bounded best-W selector over a stream of candidates. Insertion
// uses strictly-greater comparisons throughout, so candidates offered
// earlier outrank later ones on score ties — the same order the reference
// implementation's stable sort produces. Selecting this way costs O(V*W)
// per beam per step (W is small) and allocates nothing after construction,
// where the reference materialised and sorted width*vocab hypotheses.
type topK struct {
	cands []beamCand
}

func (t *topK) reset(width int) {
	if cap(t.cands) < width {
		t.cands = make([]beamCand, 0, width)
	}
	t.cands = t.cands[:0]
}

func (t *topK) offer(c beamCand) {
	n := len(t.cands)
	if n == cap(t.cands) {
		if c.score <= t.cands[n-1].score {
			return
		}
		t.cands[n-1] = c
		n--
	} else {
		t.cands = append(t.cands, c)
	}
	for i := n; i > 0 && t.cands[i].score > t.cands[i-1].score; i-- {
		t.cands[i], t.cands[i-1] = t.cands[i-1], t.cands[i]
	}
}

// beamCached is the KV-cached beam decoder. Each surviving candidate either
// steals its parent's cache (first extension of that parent) or copies it
// onto a state recycled from dead hypotheses, so per step the engine runs
// one cached token step per live beam and never re-encodes the prefix.
func (m *Model) beamCached(prefix []int, maxNew int, opts BeamOptions) []int {
	W := opts.Width

	root := m.newGenState()
	for _, tok := range prefix {
		root.step(tok)
	}

	beams := make([]*beamSlot, 1, W)
	beams[0] = &beamSlot{st: root, tokens: make([]int, 0, maxNew)}
	next := make([]*beamSlot, 0, W)
	var freeStates []*genState
	var freeSlots []*beamSlot
	sel := &topK{}
	used := make([]bool, W)

	grabState := func(src *genState) *genState {
		if n := len(freeStates); n > 0 {
			st := freeStates[n-1]
			freeStates = freeStates[:n-1]
			st.copyFrom(src)
			return st
		}
		return src.fork()
	}
	grabSlot := func() *beamSlot {
		if n := len(freeSlots); n > 0 {
			sl := freeSlots[n-1]
			freeSlots = freeSlots[:n-1]
			return sl
		}
		return &beamSlot{tokens: make([]int, 0, maxNew)}
	}

	for step := 0; step < maxNew; step++ {
		sel.reset(W)
		alive := false
		for bi, h := range beams {
			if h.done {
				sel.offer(beamCand{
					parent: bi, tok: -1, logProb: h.logProb,
					score: beamScore(h.logProb, len(h.tokens), opts.LengthPenalty),
				})
				continue
			}
			alive = true
			lz := logZ(h.st.logits)
			n := len(h.tokens) + 1
			for tok, l := range h.st.logits {
				lp := h.logProb + (l - lz)
				sel.offer(beamCand{
					parent: bi, tok: tok, logProb: lp,
					score: beamScore(lp, n, opts.LengthPenalty),
				})
			}
		}
		if !alive {
			break
		}

		// Build the next beam set. Cache copies happen before any state is
		// stepped, so siblings forked from one parent all start from the
		// parent's pre-extension cache; the first extension of each parent
		// steals the parent's buffers outright (copy-on-extend).
		next = next[:0]
		for i := range used {
			used[i] = false
		}
		type pending struct {
			slot *beamSlot
			tok  int
		}
		var steps [8]pending // W is small; spill only for very wide beams
		stepList := steps[:0]
		for _, c := range sel.cands {
			if c.tok < 0 {
				next = append(next, beams[c.parent])
				continue
			}
			p := beams[c.parent]
			done := opts.StopToken >= 0 && c.tok == opts.StopToken
			sl := grabSlot()
			sl.logProb = c.logProb
			sl.done = done
			if !done && !used[c.parent] {
				// First live extension: take the parent's cache and step it.
				used[c.parent] = true
				sl.st = p.st
			} else if !done {
				sl.st = grabState(p.st)
			} else {
				sl.st = nil // finished hypotheses never step again
			}
			sl.tokens = append(sl.tokens[:0], p.tokens...)
			sl.tokens = append(sl.tokens, c.tok)
			if !done {
				stepList = append(stepList, pending{sl, c.tok})
			}
			next = append(next, sl)
		}
		// Recycle the caches of hypotheses that produced no surviving live
		// extension, then advance every survivor by its chosen token.
		for bi, h := range beams {
			if h.st != nil && !used[bi] {
				freeStates = append(freeStates, h.st)
				h.st = nil
			}
			carried := false
			for _, sl := range next {
				if sl == h {
					carried = true
					break
				}
			}
			if !carried {
				freeSlots = append(freeSlots, h)
			}
		}
		// The final iteration's chosen tokens complete their hypotheses;
		// they are never fed back, which is what keeps the deepest state at
		// len(prefix)+maxNew-1 positions.
		if step+1 < maxNew {
			for _, ps := range stepList {
				ps.slot.st.step(ps.tok)
			}
		}
		beams = append(beams[:0], next...)
		if len(used) < len(beams) {
			used = make([]bool, len(beams))
		}
	}

	best := beams[0]
	bestScore := beamScore(best.logProb, len(best.tokens), opts.LengthPenalty)
	for _, h := range beams[1:] {
		if s := beamScore(h.logProb, len(h.tokens), opts.LengthPenalty); s > bestScore {
			best, bestScore = h, s
		}
	}
	return best.tokens
}

// beamHyp is one live hypothesis of the full-forward reference decoder.
type beamHyp struct {
	tokens  []int // generated suffix only
	logProb float64
	done    bool
}

func (h beamHyp) score(penalty float64) float64 {
	return beamScore(h.logProb, len(h.tokens), penalty)
}

// beamFullForward is the reference beam decoder: a full forward pass over
// the (window-truncated) sequence per beam per step. It is the semantic
// pin for beamCached and the fallback for requests that overflow the
// context window, where it reproduces Generate's left-truncation.
func (m *Model) beamFullForward(prefix []int, maxNew int, opts BeamOptions) []int {
	beams := []beamHyp{{}}
	for step := 0; step < maxNew; step++ {
		var next []beamHyp
		alive := false
		for _, h := range beams {
			if h.done {
				next = append(next, h)
				continue
			}
			alive = true
			seq := append(append([]int(nil), prefix...), h.tokens...)
			if len(seq) > m.cfg.Ctx {
				seq = seq[len(seq)-m.cfg.Ctx:]
			}
			tr := m.forward(seq)
			logits := m.logitsAt(tr, len(seq)-1)
			for tok, lp := range logSoftmax(logits) {
				cand := beamHyp{
					tokens:  append(append([]int(nil), h.tokens...), tok),
					logProb: h.logProb + lp,
					done:    opts.StopToken >= 0 && tok == opts.StopToken,
				}
				next = append(next, cand)
			}
		}
		if !alive {
			break
		}
		sort.SliceStable(next, func(i, j int) bool {
			return next[i].score(opts.LengthPenalty) > next[j].score(opts.LengthPenalty)
		})
		if len(next) > opts.Width {
			next = next[:opts.Width]
		}
		beams = next
	}
	best := beams[0]
	for _, h := range beams[1:] {
		if h.score(opts.LengthPenalty) > best.score(opts.LengthPenalty) {
			best = h
		}
	}
	return best.tokens
}

// logZ returns the log-normaliser of a logits vector (log sum exp), the
// allocation-free core of logSoftmax.
func logZ(logits []float64) float64 {
	maxl := math.Inf(-1)
	for _, l := range logits {
		if l > maxl {
			maxl = l
		}
	}
	sum := 0.0
	for _, l := range logits {
		sum += math.Exp(l - maxl)
	}
	return maxl + math.Log(sum)
}

// logSoftmax converts logits to log-probabilities.
func logSoftmax(logits []float64) []float64 {
	lz := logZ(logits)
	out := make([]float64, len(logits))
	for i, l := range logits {
		out[i] = l - lz
	}
	return out
}
