package neural

import "math"

// decodeScratch is the reusable working memory of one incremental decode:
// every buffer the single-row step kernel needs, allocated once per
// generation and overwritten in place each token. Before this arena existed,
// step allocated fresh x/q/att/score/hidden/logit slices for every token —
// about a dozen garbage objects per token per layer — which dominated the
// allocator profile of the serving path. A scratch is owned by one
// generation and must not be shared across goroutines; beam search shares
// one arena across all of its forked states because a beam decodes
// single-threaded.
type decodeScratch struct {
	x   []float64 // Dim: residual stream of the current token
	a   []float64 // Dim: layernorm output feeding q/k/v
	q   []float64 // Dim: query row
	att []float64 // Dim: concatenated head outputs
	ao  []float64 // Dim: attention output projection
	bIn []float64 // Dim: layernorm output feeding the MLP
	mo  []float64 // Dim: MLP output projection
	hf  []float64 // Dim: final layernorm output
	h1  []float64 // MLPHidden: pre/post-GELU hidden row
	// scores holds one Ctx-wide attention-score row per kernel worker the
	// arena was sized for (KernelProcs at creation), so parallel per-head
	// attention never shares a buffer between workers.
	scores []float64
}

// newDecodeScratch sizes an arena for m's architecture.
func (m *Model) newDecodeScratch() *decodeScratch {
	d := m.cfg.Dim
	rows := KernelProcs()
	if rows < 1 {
		rows = 1
	}
	return &decodeScratch{
		x:      make([]float64, d),
		a:      make([]float64, d),
		q:      make([]float64, d),
		att:    make([]float64, d),
		ao:     make([]float64, d),
		bIn:    make([]float64, d),
		mo:     make([]float64, d),
		hf:     make([]float64, d),
		h1:     make([]float64, m.cfg.MLPHidden),
		scores: make([]float64, rows*m.cfg.Ctx),
	}
}

// lnRowInto layer-normalises a single row into dst (len(dst) == len(x)).
func lnRowInto(dst, x, g, b []float64) {
	const eps = 1e-5
	d := len(x)
	mean := 0.0
	for _, v := range x {
		mean += v
	}
	mean /= float64(d)
	varr := 0.0
	for _, v := range x {
		dv := v - mean
		varr += dv * dv
	}
	varr /= float64(d)
	rstd := 1 / math.Sqrt(varr+eps)
	for i, v := range x {
		dst[i] = (v-mean)*rstd*g[i] + b[i]
	}
}

// vecMatInto computes dst = x @ w for one row (w: len(x) x len(dst)),
// overwriting dst. Large products split dst into column tiles across the
// kernel workers (see parallel.go); each element accumulates over ascending
// input index with zero inputs skipped at any worker count, so serial and
// parallel results are bit-identical.
func vecMatInto(dst, x, w []float64) {
	out := len(dst)
	procs, minC := KernelProcs(), minTileCols(len(x))
	if serialChunk(procs, out, minC) {
		vecMatTile(dst, x, w, out, 0, out)
		return
	}
	parallelFor(procs, out, minC, func(_, lo, hi int) {
		vecMatTile(dst, x, w, out, lo, hi)
	})
}

// matmulInto computes dst = x @ w for x: T x in, w: in x out, overwriting
// dst[:T*out]. Rows split across the kernel workers; the accumulation order
// per row matches vecMatInto and matmul, so batched and single-row decode
// paths stay bit-identical at any worker count.
func matmulInto(dst, x []float64, T, in int, w []float64, out int) {
	procs, minR := KernelProcs(), minMatRows(in, out)
	if serialChunk(procs, T, minR) {
		matmulRows(dst, x, 0, T, in, w, out)
		return
	}
	parallelFor(procs, T, minR, func(_, lo, hi int) {
		matmulRows(dst, x, lo, hi, in, w, out)
	})
}
