package neural

import (
	"math"
	"time"
)

// genState is an incremental decoding state: the per-layer key/value caches
// that let each new token attend over all previous positions without
// recomputing them — the KV cache every production transformer server uses.
type genState struct {
	m *Model
	// k[l], v[l] hold the cached keys/values of layer l, pos*Dim flat.
	k, v [][]float64
	pos  int
}

// newGenState allocates an empty state.
func (m *Model) newGenState() *genState {
	return &genState{
		m: m,
		k: make([][]float64, m.cfg.Layers),
		v: make([][]float64, m.cfg.Layers),
	}
}

// lnRow layer-normalises a single row.
func lnRow(x, g, b []float64) []float64 {
	const eps = 1e-5
	d := len(x)
	mean := 0.0
	for _, v := range x {
		mean += v
	}
	mean /= float64(d)
	varr := 0.0
	for _, v := range x {
		dv := v - mean
		varr += dv * dv
	}
	varr /= float64(d)
	rstd := 1 / math.Sqrt(varr+eps)
	out := make([]float64, d)
	for i, v := range x {
		out[i] = (v-mean)*rstd*g[i] + b[i]
	}
	return out
}

// vecMat computes y = x @ w for one row (w: in x out).
func vecMat(x, w []float64, out int) []float64 {
	y := make([]float64, out)
	for i, xv := range x {
		if xv == 0 {
			continue
		}
		wr := w[i*out : (i+1)*out]
		for j, wv := range wr {
			y[j] += xv * wv
		}
	}
	return y
}

// step feeds one token through the model, appending to the caches, and
// returns the logits for the next-token distribution. It must be fed tokens
// in order; pos must stay below the context length.
func (s *genState) step(tok int) []float64 {
	m := s.m
	cfg := m.cfg
	d := cfg.Dim
	heads, dh := cfg.Heads, d/cfg.Heads
	scale := 1 / math.Sqrt(float64(dh))

	x := make([]float64, d)
	te := m.tokEmb.W[tok*d : (tok+1)*d]
	pe := m.posEmb.W[s.pos*d : (s.pos+1)*d]
	for i := 0; i < d; i++ {
		x[i] = te[i] + pe[i]
	}

	T := s.pos + 1
	for l, b := range m.blocks {
		a := lnRow(x, b.ln1g.W, b.ln1b.W)
		q := vecMat(a, b.wq.W, d)
		k := vecMat(a, b.wk.W, d)
		v := vecMat(a, b.wv.W, d)
		s.k[l] = append(s.k[l], k...)
		s.v[l] = append(s.v[l], v...)

		att := make([]float64, d)
		for h := 0; h < heads; h++ {
			off := h * dh
			scores := make([]float64, T)
			maxs := math.Inf(-1)
			for u := 0; u < T; u++ {
				dot := 0.0
				for i := 0; i < dh; i++ {
					dot += q[off+i] * s.k[l][u*d+off+i]
				}
				dot *= scale
				scores[u] = dot
				if dot > maxs {
					maxs = dot
				}
			}
			sum := 0.0
			for u := 0; u < T; u++ {
				scores[u] = math.Exp(scores[u] - maxs)
				sum += scores[u]
			}
			for u := 0; u < T; u++ {
				p := scores[u] / sum
				for i := 0; i < dh; i++ {
					att[off+i] += p * s.v[l][u*d+off+i]
				}
			}
		}
		ao := vecMat(att, b.wo.W, d)
		for i := 0; i < d; i++ {
			x[i] += ao[i]
		}

		bIn := lnRow(x, b.ln2g.W, b.ln2b.W)
		h1 := vecMat(bIn, b.w1.W, cfg.MLPHidden)
		for j := range h1 {
			h1[j] = gelu(h1[j] + b.b1.W[j])
		}
		mo := vecMat(h1, b.w2.W, d)
		for i := 0; i < d; i++ {
			x[i] += mo[i] + b.b2.W[i]
		}
	}
	s.pos++
	if m.obs != nil {
		m.obs.KVCachePositions.Set(float64(s.pos))
		m.obs.KVCacheOccupancy.Set(float64(s.pos) / float64(cfg.Ctx))
	}

	hf := lnRow(x, m.lnfg.W, m.lnfb.W)
	logits := make([]float64, cfg.Vocab)
	for tokID := 0; tokID < cfg.Vocab; tokID++ {
		e := m.tokEmb.W[tokID*d : (tokID+1)*d]
		dot := 0.0
		for i := 0; i < d; i++ {
			dot += hf[i] * e[i]
		}
		logits[tokID] = dot
	}
	return logits
}

// GenerateCached extends prefix by up to maxNew tokens using the KV cache:
// each token costs O(sequence) instead of O(sequence^2). Outputs are
// identical to Generate as long as prefix+maxNew fits the context window;
// longer requests fall back to the windowed full forward.
func (m *Model) GenerateCached(prefix []int, maxNew int, opts GenOptions) []int {
	if len(prefix) == 0 || len(prefix)+maxNew > m.cfg.Ctx {
		return m.Generate(prefix, maxNew, opts)
	}
	var start time.Time
	if m.obs != nil {
		start = time.Now()
	}
	st := m.newGenState()
	var logits []float64
	for _, tok := range prefix {
		logits = st.step(tok)
	}
	var out []int
	for len(out) < maxNew {
		tok := pickToken(logits, opts)
		out = append(out, tok)
		if opts.StopToken > 0 && tok == opts.StopToken {
			break
		}
		if opts.Stop != nil && opts.Stop(out) {
			break
		}
		if len(out) == maxNew {
			break
		}
		logits = st.step(tok)
	}
	if m.obs != nil {
		m.obs.recordGeneration(len(out), time.Since(start))
	}
	return out
}
