package neural

import (
	"math"
	"time"
)

// genState is an incremental decoding state: the per-layer key/value caches
// that let each new token attend over all previous positions without
// recomputing them — the KV cache every production transformer server uses.
//
// The caches are allocated once at full context capacity, so step never
// grows a slice, and all per-token working memory lives in a decodeScratch
// arena created lazily on the first step. A state (and its scratch) belongs
// to one generation on one goroutine; concurrent generations each build
// their own.
type genState struct {
	m *Model
	// k[l], v[l] hold the cached keys/values of layer l, pos*Dim flat,
	// length pos*Dim with capacity Ctx*Dim.
	k, v [][]float64
	pos  int
	// scratch is the per-token working memory, shared by every state forked
	// from the same generation (decoding within one generation is serial).
	scratch *decodeScratch
	// logits is the output buffer step fills; each state owns one so beam
	// search can hold several beams' distributions at once.
	logits []float64
}

// newGenState allocates an empty state with full-context cache capacity.
func (m *Model) newGenState() *genState {
	cap := m.cfg.Ctx * m.cfg.Dim
	s := &genState{
		m: m,
		k: make([][]float64, m.cfg.Layers),
		v: make([][]float64, m.cfg.Layers),
	}
	for l := range s.k {
		s.k[l] = make([]float64, 0, cap)
		s.v[l] = make([]float64, 0, cap)
	}
	return s
}

// reset empties the caches so the state can be re-primed (the windowed
// decode path) or reused from a freelist (beam search). The backing arrays
// and scratch are kept.
func (s *genState) reset() {
	for l := range s.k {
		s.k[l] = s.k[l][:0]
		s.v[l] = s.v[l][:0]
	}
	s.pos = 0
}

// fork returns an independent copy of the state: the caches are copied into
// freshly allocated full-capacity buffers, the scratch arena is shared
// (decoding within one generation is single-threaded), and the logits
// buffer is fresh. Beam search prefers copyFrom onto recycled states; fork
// is the allocation path when the freelist is empty.
func (s *genState) fork() *genState {
	c := s.m.newGenState()
	c.scratch = s.scratch
	c.copyFrom(s)
	return c
}

// copyFrom overwrites s with src's cache contents and position. Both states
// must belong to the same model.
func (s *genState) copyFrom(src *genState) {
	for l := range s.k {
		s.k[l] = append(s.k[l][:0], src.k[l]...)
		s.v[l] = append(s.v[l][:0], src.v[l]...)
	}
	s.pos = src.pos
}

// step feeds one token through the model, appending to the caches, and
// returns the logits for the next-token distribution (valid until the next
// step on this state). It must be fed tokens in order; pos must stay below
// the context length. Steady-state it performs no heap allocation: keys and
// values are written directly into the preallocated cache rows and every
// intermediate lives in the scratch arena.
func (s *genState) step(tok int) []float64 {
	m := s.m
	cfg := m.cfg
	d := cfg.Dim
	heads, dh := cfg.Heads, d/cfg.Heads
	scale := 1 / math.Sqrt(float64(dh))
	if s.scratch == nil {
		s.scratch = m.newDecodeScratch()
	}
	if s.logits == nil {
		s.logits = make([]float64, cfg.Vocab)
	}
	sc := s.scratch
	var stepStart time.Time
	if m.obs != nil {
		stepStart = time.Now()
	}

	x := sc.x
	te := m.tokEmb.W[tok*d : (tok+1)*d]
	pe := m.posEmb.W[s.pos*d : (s.pos+1)*d]
	for i := 0; i < d; i++ {
		x[i] = te[i] + pe[i]
	}

	T := s.pos + 1
	for l, b := range m.blocks {
		lnRowInto(sc.a, x, b.ln1g.W, b.ln1b.W)
		vecMatInto(sc.q, sc.a, b.wq.W)
		kl := s.k[l][:T*d]
		vl := s.v[l][:T*d]
		s.k[l], s.v[l] = kl, vl
		vecMatInto(kl[s.pos*d:], sc.a, b.wk.W)
		vecMatInto(vl[s.pos*d:], sc.a, b.wv.W)

		attendRowPar(sc.att, sc.q, kl, vl, sc.scores, cfg.Ctx, T, heads, dh, d, scale)
		// Fused residual update: x += att @ wo, the bias-free output
		// projection accumulated straight onto the residual stream.
		vecMatAddBiasInto(x, sc.ao, sc.att, b.wo.W, nil)

		lnRowInto(sc.bIn, x, b.ln2g.W, b.ln2b.W)
		// Fused MLP: h1 = gelu(bIn @ w1 + b1), then x += h1 @ w2 + b2.
		vecMatBiasGeluInto(sc.h1, sc.bIn, b.w1.W, b.b1.W)
		vecMatAddBiasInto(x, sc.mo, sc.h1, b.w2.W, b.b2.W)
	}
	s.pos++
	if m.obs != nil {
		m.obs.KVCachePositions.Set(float64(s.pos))
		m.obs.KVCacheOccupancy.Set(float64(s.pos) / float64(cfg.Ctx))
		m.obs.DecodeSteps.Inc()
		m.obs.StepDuration.Observe(time.Since(stepStart).Seconds())
	}

	lnRowInto(sc.hf, x, m.lnfg.W, m.lnfb.W)
	projectLogits(s.logits, sc.hf, m.tokEmb.W, d)
	return s.logits
}

// attendRow runs causal multi-head attention for one query row over the
// cached keys/values, writing the concatenated head outputs into att.
// scores must have length T (the cached positions including the current).
// It is the serial single-buffer form of attendHeads; attendRowPar is the
// same computation split across heads with per-worker score rows.
func attendRow(att, q, k, v, scores []float64, heads, dh, d int, scale float64) {
	attendHeads(att, q, k, v, scores, 0, heads, dh, d, scale)
}

// projectLogits writes hf @ tokEmb^T into logits (the tied output head),
// splitting the vocabulary across the kernel workers.
func projectLogits(logits, hf, emb []float64, d int) {
	procs, minC := KernelProcs(), minTileCols(d)
	if serialChunk(procs, len(logits), minC) {
		projectLogitsRange(logits, hf, emb, d, 0, len(logits))
		return
	}
	parallelFor(procs, len(logits), minC, func(_, lo, hi int) {
		projectLogitsRange(logits, hf, emb, d, lo, hi)
	})
}

// windowHopDiv sets the re-prime stride of the windowed decode path: when
// the cache fills, the state is rebuilt over the last Ctx - Ctx/windowHopDiv
// tokens, buying Ctx/windowHopDiv cached steps per rebuild. Amortised cost
// per token stays O(window), against O(window^2) for the full re-forward
// the pre-decode-engine code paid.
const windowHopDiv = 4

// GenerateCached extends prefix by up to maxNew tokens using the KV cache:
// each token costs O(sequence) instead of O(sequence^2). When prefix+maxNew
// fits the context window the outputs are identical to Generate. Longer
// requests decode through a hopped sliding window: whenever the cache
// fills, it is re-primed over the most recent Ctx - Ctx/4 tokens and
// decoding continues incrementally. Inside the overflow regime each token
// therefore conditions on at least 3/4 of the context window (Generate's
// exact sliding window always uses the full Ctx), which keeps the cost
// linear per token where the old fallback re-ran a quadratic full forward.
func (m *Model) GenerateCached(prefix []int, maxNew int, opts GenOptions) []int {
	if len(prefix) == 0 {
		return nil
	}
	var start time.Time
	if m.obs != nil {
		start = time.Now()
	}
	ctx := m.cfg.Ctx
	st := m.newGenState()

	// The final emitted token is never fed back, so a request fits the
	// cache exactly when prefix + maxNew - 1 positions do.
	windowed := len(prefix)+maxNew-1 > ctx
	keep := ctx - ctx/windowHopDiv
	if keep < 1 {
		keep = 1
	}
	seq := prefix
	if windowed {
		seq = append(make([]int, 0, len(prefix)+maxNew), prefix...)
	}

	// Prime over the (possibly truncated) prefix.
	var logits []float64
	prime := seq
	if len(prime) > ctx {
		prime = prime[len(prime)-ctx:]
	}
	for _, tok := range prime {
		if opts.cancelled() {
			return nil
		}
		logits = st.step(tok)
	}

	var out []int
	for len(out) < maxNew && !opts.cancelled() {
		tok := pickToken(logits, opts)
		out = append(out, tok)
		if windowed {
			seq = append(seq, tok)
		}
		if opts.OnToken != nil {
			opts.OnToken(tok)
		}
		if opts.StopToken > 0 && tok == opts.StopToken {
			break
		}
		if opts.Stop != nil && opts.Stop(out) {
			break
		}
		if len(out) == maxNew {
			break
		}
		if st.pos == ctx {
			// Cache full: re-prime over the freshest window, leaving
			// ctx/windowHopDiv positions of headroom for cached steps.
			st.reset()
			w := seq
			if len(w) > keep {
				w = w[len(w)-keep:]
			}
			for _, t := range w {
				// A disconnecting streamer must stop mid-re-prime too:
				// without this check a cancel arriving here would keep
				// stepping for up to keep tokens before the outer loop
				// notices.
				if opts.cancelled() {
					break
				}
				logits = st.step(t)
			}
		} else {
			logits = st.step(tok)
		}
	}
	if m.obs != nil {
		m.obs.recordGeneration(len(out), time.Since(start))
	}
	return out
}
