package neural

import (
	"container/list"
	"sync"
	"sync/atomic"
	"time"
)

// SessionCacheConfig tunes a SessionCache. The zero value of each field
// selects the documented default.
type SessionCacheConfig struct {
	// MaxSessions bounds resident session states (LRU evicted beyond it);
	// <= 0 selects 64.
	MaxSessions int
	// MaxBytes caps the estimated memory held by resident session states;
	// <= 0 leaves memory unbounded (the session-count bound still applies).
	// A single state larger than the cap is never retained.
	MaxBytes int64
	// TTL evicts sessions idle longer than this on the next cache mutation;
	// 0 selects 5 minutes, < 0 disables idle eviction.
	TTL time.Duration
}

// sessionCacheDefaults fill unset SessionCacheConfig fields.
const (
	defaultMaxSessions = 64
	defaultSessionTTL  = 5 * time.Minute
)

// SessionCache keeps per-session KV-cache decode states alive across
// requests, so an interactive client (an editor sending a request per
// keystroke) re-steps only the tokens that changed since its last request
// instead of re-priming the whole context.
//
// Each session id maps to the genState left behind by that session's last
// generation together with the exact token sequence fed into it. On the next
// request the cache diffs the new prefix against that sequence: the longest
// common prefix is kept (the state is truncated to it — the KV rows of a
// position depend only on the tokens at and before it), and only the
// changed suffix is stepped. An appended keystroke therefore costs O(suffix)
// where a cold decode costs O(context).
//
// States are checked out for the duration of a generation: a session's
// state is exclusive, so a concurrent request for the same id simply
// decodes cold and the last writer wins the slot. Resident states are
// bounded by an LRU with a session-count cap, an estimated-memory cap, and
// idle TTL eviction; evicting a session is always safe (the next request
// just pays one cold prime).
//
// The session id is an opaque, client-chosen affinity key. It is
// deliberately the only routing input a multi-replica frontend needs:
// hashing the id picks the replica whose SessionCache holds the state.
type SessionCache struct {
	m   *Model
	cfg SessionCacheConfig

	mu         sync.Mutex
	ll         *list.List // front = most recently used
	items      map[string]*list.Element
	bytes      int64 // estimated bytes of resident states
	checkedOut int   // states currently out for a generation

	evictions atomic.Uint64
	// reusedSteps / freshSteps count prefix positions served from a
	// retained state vs re-stepped, across all session generations.
	reusedSteps atomic.Uint64
	freshSteps  atomic.Uint64

	now func() time.Time // injectable clock for TTL tests
}

// sessionEntry is one resident session state.
type sessionEntry struct {
	id   string
	st   *genState
	seq  []int // tokens fed into st, len(seq) == st.pos
	last time.Time
	size int64
}

// NewSessionCache builds a session cache over the model's decode engine.
// The model must be trained and frozen; every retained state belongs to
// this model.
func (m *Model) NewSessionCache(cfg SessionCacheConfig) *SessionCache {
	if cfg.MaxSessions <= 0 {
		cfg.MaxSessions = defaultMaxSessions
	}
	if cfg.TTL == 0 {
		cfg.TTL = defaultSessionTTL
	}
	return &SessionCache{
		m:     m,
		cfg:   cfg,
		ll:    list.New(),
		items: make(map[string]*list.Element),
		now:   time.Now,
	}
}

// stateBytes estimates the resident size of one session state: the
// full-capacity KV buffers, the logits row, and the scratch arena (eight
// Dim-sized rows plus the MLP hidden row and the attention score buffer —
// see decodeScratch).
func (m *Model) stateBytes() int64 {
	kv := int64(m.cfg.Layers) * 2 * int64(m.cfg.Ctx) * int64(m.cfg.Dim)
	scratch := int64(8*m.cfg.Dim + m.cfg.MLPHidden + m.cfg.Ctx)
	return (kv + int64(m.cfg.Vocab) + scratch) * 8
}

// truncate drops every cached position at index n and beyond, rewinding the
// state to exactly the first n fed tokens. The KV rows of a position depend
// only on the tokens at and before it, so the surviving rows are identical
// to what re-priming those n tokens would produce.
func (s *genState) truncate(n int) {
	d := s.m.cfg.Dim
	for l := range s.k {
		s.k[l] = s.k[l][:n*d]
		s.v[l] = s.v[l][:n*d]
	}
	s.pos = n
}

// commonPrefixLen returns the length of the longest common prefix of a and b.
func commonPrefixLen(a, b []int) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}

// take checks the session's state out of the cache (removing it from the
// resident set) or returns nil when the id has no retained state.
func (sc *SessionCache) take(id string) *sessionEntry {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	sc.sweepLocked()
	el, ok := sc.items[id]
	if !ok {
		return nil
	}
	ent := el.Value.(*sessionEntry)
	sc.ll.Remove(el)
	delete(sc.items, id)
	sc.bytes -= ent.size
	sc.checkedOut++
	return ent
}

// put returns a state to the resident set under id, evicting LRU entries
// beyond the configured bounds. fromCheckout marks a put that pairs with an
// earlier take.
func (sc *SessionCache) put(id string, st *genState, seq []int, fromCheckout bool) {
	ent := &sessionEntry{id: id, st: st, seq: seq, size: sc.m.stateBytes()}
	sc.mu.Lock()
	defer sc.mu.Unlock()
	if fromCheckout {
		sc.checkedOut--
	}
	ent.last = sc.now()
	if el, ok := sc.items[id]; ok {
		// A concurrent request for the same id raced this one and already
		// stored a state; last writer wins the slot.
		old := el.Value.(*sessionEntry)
		sc.bytes -= old.size
		el.Value = ent
		sc.bytes += ent.size
		sc.ll.MoveToFront(el)
	} else {
		sc.items[id] = sc.ll.PushFront(ent)
		sc.bytes += ent.size
	}
	sc.sweepLocked()
	for sc.ll.Len() > sc.cfg.MaxSessions || (sc.cfg.MaxBytes > 0 && sc.bytes > sc.cfg.MaxBytes) {
		if !sc.evictOldestLocked() {
			break
		}
	}
}

// begin registers a generation that starts from a fresh state (no retained
// state was checked out). Its put pairs with this the same way a take does.
func (sc *SessionCache) begin() {
	sc.mu.Lock()
	sc.checkedOut++
	sc.mu.Unlock()
}

// sweepLocked evicts sessions idle past the TTL; the caller holds mu.
func (sc *SessionCache) sweepLocked() {
	if sc.cfg.TTL <= 0 {
		return
	}
	cutoff := sc.now().Add(-sc.cfg.TTL)
	for {
		el := sc.ll.Back()
		if el == nil || !el.Value.(*sessionEntry).last.Before(cutoff) {
			return
		}
		sc.evictOldestLocked()
	}
}

// evictOldestLocked removes the least recently used resident state; the
// caller holds mu. It reports whether an entry was evicted.
func (sc *SessionCache) evictOldestLocked() bool {
	el := sc.ll.Back()
	if el == nil {
		return false
	}
	ent := el.Value.(*sessionEntry)
	sc.ll.Remove(el)
	delete(sc.items, ent.id)
	sc.bytes -= ent.size
	sc.evictions.Add(1)
	return true
}

// Invalidate drops any retained state for id (a no-op for unknown ids).
func (sc *SessionCache) Invalidate(id string) {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	if el, ok := sc.items[id]; ok {
		ent := el.Value.(*sessionEntry)
		sc.ll.Remove(el)
		delete(sc.items, id)
		sc.bytes -= ent.size
	}
}

// Len returns the number of resident (not checked-out) session states.
func (sc *SessionCache) Len() int {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	return sc.ll.Len()
}

// Active returns the number of live sessions: resident states plus states
// checked out by in-flight generations.
func (sc *SessionCache) Active() int {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	return sc.ll.Len() + sc.checkedOut
}

// Bytes returns the estimated memory held by resident session states.
func (sc *SessionCache) Bytes() int64 {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	return sc.bytes
}

// Evictions returns how many session states have been evicted (LRU, memory
// cap, or TTL).
func (sc *SessionCache) Evictions() uint64 { return sc.evictions.Load() }

// ReuseRatio returns the fraction of prefix positions served from retained
// states across all session generations (0 when none have run).
func (sc *SessionCache) ReuseRatio() float64 {
	reused := float64(sc.reusedSteps.Load())
	fresh := float64(sc.freshSteps.Load())
	if reused+fresh == 0 {
		return 0
	}
	return reused / (reused + fresh)
}

// Generate extends prefix by up to maxNew tokens like Model.GenerateCached,
// reusing (and then retaining) the KV-cache state of the given session. The
// longest common prefix between the session's fed tokens and the new prefix
// is kept; only the changed suffix is re-stepped. Output is byte-identical
// to a cold GenerateCached call with the same arguments.
//
// reused reports how many prefix positions were served from the retained
// state (0 on a cold session). An empty id, an empty prefix, or a request
// that overflows the context window (prefix+maxNew-1 > Ctx, the windowed
// re-prime regime — a hopped window cannot be represented as a prefix
// state) falls back to GenerateCached; overflow additionally invalidates
// the session, since its retained state no longer matches what the client
// sees.
func (sc *SessionCache) Generate(id string, prefix []int, maxNew int, opts GenOptions) (out []int, reused int) {
	if id == "" || len(prefix) == 0 {
		return sc.m.GenerateCached(prefix, maxNew, opts), 0
	}
	m := sc.m
	ctx := m.cfg.Ctx
	if len(prefix)+maxNew-1 > ctx {
		sc.Invalidate(id)
		return m.GenerateCached(prefix, maxNew, opts), 0
	}
	var start time.Time
	if m.obs != nil {
		start = time.Now()
	}

	st, fed, reused := sc.resume(id, prefix)

	// Prime the un-reused prefix suffix. At least one token is always
	// stepped (reuse stops before the final prefix position), so logits are
	// fresh for the first pick.
	var logits []float64
	for _, tok := range prefix[reused:] {
		if opts.cancelled() {
			sc.put(id, st, fed, true)
			return nil, reused
		}
		logits = st.step(tok)
		fed = append(fed, tok)
	}
	sc.reusedSteps.Add(uint64(reused))
	sc.freshSteps.Add(uint64(len(prefix) - reused))

	for len(out) < maxNew && !opts.cancelled() {
		tok := pickToken(logits, opts)
		out = append(out, tok)
		if opts.OnToken != nil {
			opts.OnToken(tok)
		}
		if opts.StopToken > 0 && tok == opts.StopToken {
			break
		}
		if opts.Stop != nil && opts.Stop(out) {
			break
		}
		if len(out) == maxNew || st.pos == ctx {
			break
		}
		logits = st.step(tok)
		fed = append(fed, tok)
	}
	sc.put(id, st, fed, true)
	if m.obs != nil {
		m.obs.recordGeneration(len(out), time.Since(start))
	}
	return out, reused
}

// resume checks out the session's state and rewinds it to the longest
// common prefix with the request, returning the state, the tokens it now
// holds, and how many positions were reused. A cold session (or one whose
// state diverges at position 0) gets a fresh state.
func (sc *SessionCache) resume(id string, prefix []int) (st *genState, fed []int, reused int) {
	fed = make([]int, 0, len(prefix))
	if ent := sc.take(id); ent != nil {
		lcp := commonPrefixLen(ent.seq, prefix)
		// Reuse stops one position short of the full prefix: the retained
		// logits of intermediate steps are gone, so the final prefix token
		// is always re-stepped to regenerate the next-token distribution.
		if lcp > len(prefix)-1 {
			lcp = len(prefix) - 1
		}
		if lcp > 0 {
			st = ent.st
			st.truncate(lcp)
			fed = append(fed, prefix[:lcp]...)
			return st, fed, lcp
		}
		// Divergence at position 0: the retained state is useless; decode
		// fresh but keep the checkout so the eventual put balances it.
		return sc.m.newGenState(), fed, 0
	}
	sc.begin()
	return sc.m.newGenState(), fed, 0
}
