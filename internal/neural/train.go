package neural

import (
	"math"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"time"
)

// TrainConfig controls a training run.
type TrainConfig struct {
	// Epochs over the training sequences.
	Epochs int
	// LR is the peak learning rate (the paper uses 5e-5 for its scale; the
	// tiny models here train well around 1e-3..3e-3).
	LR float64
	// Schedule shapes the learning rate over steps; nil means constant.
	Schedule Schedule
	// BatchSize is the number of sequences per optimizer step.
	BatchSize int
	// Seed shuffles the data deterministically.
	Seed int64
	// WeightDecay enables decoupled (AdamW-style) weight decay.
	WeightDecay float64
	// ClipNorm clips the global gradient norm before each step (0 = off).
	ClipNorm float64
	// Progress, when non-nil, receives (step, totalSteps, loss).
	Progress func(step, total int, loss float64)
}

// Train fits the model to token sequences with next-token prediction. Each
// sequence is truncated to the context length. It returns the mean loss of
// the final epoch.
func (m *Model) Train(seqs [][]int, cfg TrainConfig) float64 {
	if cfg.Epochs <= 0 {
		cfg.Epochs = 1
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 8
	}
	if cfg.LR <= 0 {
		cfg.LR = 1e-3
	}
	if cfg.Schedule == nil {
		cfg.Schedule = ConstantLR
	}
	opt := NewAdam(m.params)
	opt.WeightDecay = cfg.WeightDecay
	opt.ClipNorm = cfg.ClipNorm
	r := rand.New(rand.NewSource(cfg.Seed))

	order := make([]int, len(seqs))
	for i := range order {
		order[i] = i
	}
	stepsPerEpoch := (len(seqs) + cfg.BatchSize - 1) / cfg.BatchSize
	total := stepsPerEpoch * cfg.Epochs
	step := 0
	lastEpochLoss := 0.0
	for ep := 0; ep < cfg.Epochs; ep++ {
		r.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		epochLoss, epochN := 0.0, 0
		for at := 0; at < len(order); at += cfg.BatchSize {
			end := at + cfg.BatchSize
			if end > len(order) {
				end = len(order)
			}
			var batchStart time.Time
			if m.obs != nil {
				batchStart = time.Now()
			}
			batchLoss, n := m.batchGrad(seqs, order[at:end])
			if n == 0 {
				continue
			}
			// Average accumulated gradients over the batch.
			inv := 1 / float64(n)
			for _, p := range m.params {
				for i := range p.G {
					p.G[i] *= inv
				}
			}
			var stepStart time.Time
			if m.obs != nil {
				stepStart = time.Now()
			}
			opt.Step(cfg.LR * cfg.Schedule(step, total))
			step++
			if m.obs != nil {
				now := time.Now()
				m.obs.OptStep.Observe(now.Sub(stepStart).Seconds())
				toks := 0
				for _, idx := range order[at:end] {
					if s := clipSeq(seqs[idx], m.cfg.Ctx); s != nil {
						toks += len(s)
					}
				}
				m.obs.TrainTokens.Add(toks)
				if elapsed := now.Sub(batchStart).Seconds(); elapsed > 0 {
					m.obs.TrainTokensPerSec.Set(float64(toks) / elapsed)
				}
			}
			batchLoss /= float64(n)
			epochLoss += batchLoss
			epochN++
			if cfg.Progress != nil {
				cfg.Progress(step, total, batchLoss)
			}
		}
		if epochN > 0 {
			lastEpochLoss = epochLoss / float64(epochN)
		}
	}
	return lastEpochLoss
}

// batchGrad accumulates gradients for one batch of sequences, running the
// per-sequence forward/backward passes in parallel across CPU cores (the
// data parallelism the paper gets from its 16 GPUs). Each worker owns a
// private gradient buffer that is summed into the model's accumulators when
// all workers finish.
func (m *Model) batchGrad(seqs [][]int, batch []int) (loss float64, n int) {
	workers := runtime.GOMAXPROCS(0)
	if workers > len(batch) {
		workers = len(batch)
	}
	if workers <= 1 {
		for _, idx := range batch {
			seq := clipSeq(seqs[idx], m.cfg.Ctx)
			if seq == nil {
				continue
			}
			loss += m.lossAndBackward(seq, nil)
			n++
		}
		return loss, n
	}

	type result struct {
		loss  float64
		n     int
		grads [][]float64
	}
	results := make([]result, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// A shadow model shares weights but owns private gradients.
			shadow := m.shadowForGrads()
			res := result{grads: make([][]float64, len(shadow.params))}
			for i, p := range shadow.params {
				res.grads[i] = p.G
			}
			// Static round-robin assignment keeps runs bit-reproducible:
			// each worker always sums the same sequences in the same
			// order, and workers merge in index order below.
			for i := w; i < len(batch); i += workers {
				seq := clipSeq(seqs[batch[i]], m.cfg.Ctx)
				if seq == nil {
					continue
				}
				res.loss += shadow.lossAndBackward(seq, nil)
				res.n++
			}
			results[w] = res
		}(w)
	}
	wg.Wait()

	for _, res := range results {
		if res.n == 0 {
			continue
		}
		loss += res.loss
		n += res.n
		for i, g := range res.grads {
			dst := m.params[i].G
			for j, v := range g {
				dst[j] += v
			}
		}
	}
	return loss, n
}

// clipSeq truncates to the context length and rejects too-short sequences.
func clipSeq(seq []int, ctx int) []int {
	if len(seq) > ctx {
		seq = seq[:ctx]
	}
	if len(seq) < 2 {
		return nil
	}
	return seq
}

// shadowForGrads returns a model view sharing every weight slice with m but
// holding freshly allocated gradient buffers, so concurrent backward passes
// never write to shared memory.
func (m *Model) shadowForGrads() *Model {
	shadow := &Model{cfg: m.cfg, obs: m.obs}
	clone := func(p *Param) *Param {
		np := &Param{Name: p.Name, W: p.W, G: make([]float64, len(p.G))}
		shadow.params = append(shadow.params, np)
		return np
	}
	shadow.tokEmb = clone(m.tokEmb)
	shadow.posEmb = clone(m.posEmb)
	for _, b := range m.blocks {
		shadow.blocks = append(shadow.blocks, &block{
			ln1g: clone(b.ln1g), ln1b: clone(b.ln1b),
			wq: clone(b.wq), wk: clone(b.wk), wv: clone(b.wv), wo: clone(b.wo),
			ln2g: clone(b.ln2g), ln2b: clone(b.ln2b),
			w1: clone(b.w1), b1: clone(b.b1), w2: clone(b.w2), b2: clone(b.b2),
		})
	}
	shadow.lnfg = clone(m.lnfg)
	shadow.lnfb = clone(m.lnfb)
	return shadow
}

// GenOptions control decoding; the zero value is greedy decoding with no
// stop token.
type GenOptions struct {
	// Temperature > 0 with Rand non-nil enables sampling.
	Temperature float64
	// TopK restricts sampling to the k most probable tokens (0 = all).
	TopK int
	// StopToken halts generation when emitted (-1 disables; 0 is a valid
	// token id, so the zero value also disables stopping on token 0 only
	// if the vocabulary reserves id 0; set explicitly when needed).
	StopToken int
	// Stop halts generation when it returns true for the emitted tokens.
	Stop func(generated []int) bool
	// Rand supplies randomness; nil forces greedy decoding.
	Rand *rand.Rand
	// OnToken, when set, receives every generated token id the moment it is
	// chosen — before the next decode step runs — so callers can stream
	// output while generation is still in flight. The hook runs on the
	// decoding goroutine and must not block; it never changes which tokens
	// are produced (streamed and buffered output are identical).
	OnToken func(tok int)
	// Cancel, when non-nil, aborts generation as soon as it is closed: the
	// decode loop checks it before every step and returns the tokens
	// produced so far. This is how a dropped client connection stops an
	// in-flight generation from burning a worker slot.
	Cancel <-chan struct{}
}

// cancelled reports whether the options' cancel channel has been closed.
func (o *GenOptions) cancelled() bool {
	if o.Cancel == nil {
		return false
	}
	select {
	case <-o.Cancel:
		return true
	default:
		return false
	}
}

// Generate extends prefix by up to maxNew tokens and returns the new tokens.
// The context window slides when the sequence exceeds the configured length
// (left truncation, as the paper describes for over-long inputs).
func (m *Model) Generate(prefix []int, maxNew int, opts GenOptions) []int {
	var start time.Time
	if m.obs != nil {
		start = time.Now()
	}
	seq := append([]int(nil), prefix...)
	var out []int
	for len(out) < maxNew && !opts.cancelled() {
		window := seq
		if len(window) > m.cfg.Ctx {
			window = window[len(window)-m.cfg.Ctx:]
		}
		if len(window) == 0 {
			break
		}
		tr := m.forward(window)
		logits := m.logitsAt(tr, len(window)-1)
		tok := pickToken(logits, opts)
		out = append(out, tok)
		seq = append(seq, tok)
		if opts.OnToken != nil {
			opts.OnToken(tok)
		}
		if opts.StopToken > 0 && tok == opts.StopToken {
			break
		}
		if opts.Stop != nil && opts.Stop(out) {
			break
		}
	}
	if m.obs != nil {
		m.obs.recordGeneration(len(out), time.Since(start))
	}
	return out
}

// pickToken chooses the next token from logits.
func pickToken(logits []float64, opts GenOptions) int {
	if opts.Rand == nil || opts.Temperature <= 0 {
		best, bestV := 0, math.Inf(-1)
		for i, l := range logits {
			if l > bestV {
				best, bestV = i, l
			}
		}
		return best
	}
	type cand struct {
		tok int
		l   float64
	}
	cands := make([]cand, len(logits))
	for i, l := range logits {
		cands[i] = cand{i, l}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].l > cands[j].l })
	if opts.TopK > 0 && len(cands) > opts.TopK {
		cands = cands[:opts.TopK]
	}
	maxl := cands[0].l
	sum := 0.0
	ws := make([]float64, len(cands))
	for i, c := range cands {
		w := math.Exp((c.l - maxl) / opts.Temperature)
		ws[i] = w
		sum += w
	}
	r := opts.Rand.Float64() * sum
	for i, w := range ws {
		r -= w
		if r <= 0 {
			return cands[i].tok
		}
	}
	return cands[len(cands)-1].tok
}

// Perplexity evaluates exp(mean cross-entropy) on a held-out sequence.
func (m *Model) Perplexity(tokens []int) float64 {
	if len(tokens) < 2 {
		return math.Inf(1)
	}
	if len(tokens) > m.cfg.Ctx {
		tokens = tokens[:m.cfg.Ctx]
	}
	return math.Exp(m.Loss(tokens, nil))
}
