package neural

import (
	"sync"
	"testing"
	"time"

	"wisdom/internal/observe"
)

func sessionTestModel(t testing.TB) *Model {
	t.Helper()
	m, err := NewModel(Config{Vocab: 32, Ctx: 64, Dim: 16, Heads: 2, Layers: 2, Seed: 41})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestSessionGenerateMatchesCold drives a session through an editor-like
// sequence — extend, mid-edit divergence, full replacement — and checks each
// warm output byte-identical to a cold GenerateCached of the same request.
func TestSessionGenerateMatchesCold(t *testing.T) {
	m := sessionTestModel(t)
	sc := m.NewSessionCache(SessionCacheConfig{})
	opts := GenOptions{StopToken: -1}

	base := []int{3, 14, 1, 5, 9, 2, 6, 5, 8, 7, 11, 4}
	extend := append(append([]int(nil), base...), 13, 2)
	diverged := append([]int(nil), extend...)
	diverged[6] = 17 // mid-edit: user changed an earlier token
	replaced := []int{21, 20, 19, 18, 17, 16}

	cases := []struct {
		name       string
		prefix     []int
		wantReuse  int  // exact reused positions, -1 to skip the check
		wantReused bool // reused > 0
	}{
		{"cold", base, 0, false},
		{"extend", extend, -1, true},
		{"diverge", diverged, 6, true},
		{"replace", replaced, 0, false},
	}
	for _, tc := range cases {
		warm, reused := sc.Generate("sess", tc.prefix, 6, opts)
		cold := m.GenerateCached(tc.prefix, 6, opts)
		if !equalInts(warm, cold) {
			t.Fatalf("%s: warm %v != cold %v (reused %d)", tc.name, warm, cold, reused)
		}
		if tc.wantReuse >= 0 && reused != tc.wantReuse {
			t.Errorf("%s: reused = %d, want %d", tc.name, reused, tc.wantReuse)
		}
		if tc.wantReused && reused == 0 {
			t.Errorf("%s: expected prefix reuse, got none", tc.name)
		}
	}
	if sc.ReuseRatio() <= 0 {
		t.Errorf("reuse ratio = %v, want > 0", sc.ReuseRatio())
	}
}

// TestSessionWarmStepsOnlySuffix pins the core latency claim: a warm request
// whose prefix extends the session's fed tokens re-steps only the appended
// suffix (plus the always-re-stepped final prefix position), not the whole
// context.
func TestSessionWarmStepsOnlySuffix(t *testing.T) {
	m := sessionTestModel(t)
	reg := observe.NewRegistry()
	ins := NewInstrumentation(reg)
	m.Instrument(ins)
	sc := m.NewSessionCache(SessionCacheConfig{})
	opts := GenOptions{StopToken: -1}

	prefix := []int{3, 14, 1, 5, 9, 2, 6, 5, 8, 7, 11, 4}
	const maxNew = 4

	before := ins.DecodeSteps.Value()
	out, reused := sc.Generate("sess", prefix, maxNew, opts)
	coldSteps := ins.DecodeSteps.Value() - before
	if reused != 0 {
		t.Fatalf("first request reused %d, want 0", reused)
	}
	// Cold: prime len(prefix), then feed each emitted token except the last.
	if want := uint64(len(prefix) + len(out) - 1); coldSteps != want {
		t.Fatalf("cold steps = %d, want %d", coldSteps, want)
	}

	// The session now holds prefix+out[:len(out)-1]; extending by exactly the
	// generated tokens means only one prefix position (the final one) must be
	// re-stepped.
	next := append(append([]int(nil), prefix...), out...)
	before = ins.DecodeSteps.Value()
	out2, reused2 := sc.Generate("sess", next, maxNew, opts)
	warmSteps := ins.DecodeSteps.Value() - before
	if want := len(next) - 1; reused2 != want {
		t.Fatalf("warm request reused %d, want %d", reused2, want)
	}
	if want := uint64(1 + len(out2) - 1); warmSteps != want {
		t.Fatalf("warm steps = %d, want %d (suffix only)", warmSteps, want)
	}
	if cold := m.GenerateCached(next, maxNew, opts); !equalInts(out2, cold) {
		t.Fatalf("warm %v != cold %v", out2, cold)
	}
}

// TestSessionOverflowFallsBackAndInvalidates checks the windowed regime: a
// request that cannot fit the context as a pure prefix state falls back to
// GenerateCached and drops the session (a hopped window is not a prefix).
func TestSessionOverflowFallsBackAndInvalidates(t *testing.T) {
	m, err := NewModel(Config{Vocab: 16, Ctx: 8, Dim: 8, Heads: 2, Layers: 1, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	sc := m.NewSessionCache(SessionCacheConfig{})
	opts := GenOptions{StopToken: -1}

	seed := []int{1, 2, 3}
	if _, reused := sc.Generate("s", seed, 2, opts); reused != 0 {
		t.Fatal("unexpected reuse on first request")
	}
	if sc.Len() != 1 {
		t.Fatalf("resident sessions = %d, want 1", sc.Len())
	}

	// 3 + 10 - 1 > 8: overflow regime.
	warm, reused := sc.Generate("s", seed, 10, opts)
	cold := m.GenerateCached(seed, 10, opts)
	if !equalInts(warm, cold) {
		t.Fatalf("overflow warm %v != cold %v", warm, cold)
	}
	if reused != 0 {
		t.Errorf("overflow request reused %d, want 0", reused)
	}
	if sc.Len() != 0 {
		t.Errorf("session survived overflow: %d resident", sc.Len())
	}
}

// TestSessionEmptyIDBypasses checks that requests without a session id do
// not create or consume session state.
func TestSessionEmptyIDBypasses(t *testing.T) {
	m := sessionTestModel(t)
	sc := m.NewSessionCache(SessionCacheConfig{})
	out, reused := sc.Generate("", []int{1, 2, 3}, 4, GenOptions{StopToken: -1})
	if reused != 0 || sc.Len() != 0 || sc.Active() != 0 {
		t.Fatalf("empty id leaked state: reused %d len %d active %d", reused, sc.Len(), sc.Active())
	}
	if cold := m.GenerateCached([]int{1, 2, 3}, 4, GenOptions{StopToken: -1}); !equalInts(out, cold) {
		t.Fatalf("bypass output %v != cold %v", out, cold)
	}
}

// TestSessionLRUEviction fills the cache past MaxSessions and checks the
// least recently used session is evicted.
func TestSessionLRUEviction(t *testing.T) {
	m := sessionTestModel(t)
	sc := m.NewSessionCache(SessionCacheConfig{MaxSessions: 2, TTL: -1})
	opts := GenOptions{StopToken: -1}

	sc.Generate("a", []int{1, 2, 3}, 2, opts)
	sc.Generate("b", []int{4, 5, 6}, 2, opts)
	sc.Generate("a", []int{1, 2, 3, 7}, 2, opts) // refresh a; b is now LRU
	sc.Generate("c", []int{8, 9, 10}, 2, opts)   // evicts b

	if sc.Len() != 2 {
		t.Fatalf("resident = %d, want 2", sc.Len())
	}
	if sc.Evictions() != 1 {
		t.Fatalf("evictions = %d, want 1", sc.Evictions())
	}
	// Check the survivor first: re-querying b below re-inserts it and
	// evicts another resident.
	if _, reused := sc.Generate("a", []int{1, 2, 3, 7}, 2, opts); reused == 0 {
		t.Error("retained session a got no reuse")
	}
	if _, reused := sc.Generate("b", []int{4, 5, 6, 11}, 2, opts); reused != 0 {
		t.Errorf("evicted session b reused %d positions", reused)
	}
}

// TestSessionMemoryCapEviction bounds resident state by bytes: a cap below
// two states keeps at most one session resident no matter how many ids talk
// to the cache.
func TestSessionMemoryCapEviction(t *testing.T) {
	m := sessionTestModel(t)
	one := m.stateBytes()
	sc := m.NewSessionCache(SessionCacheConfig{MaxBytes: one + one/2, TTL: -1})
	opts := GenOptions{StopToken: -1}

	sc.Generate("a", []int{1, 2, 3}, 2, opts)
	if sc.Bytes() != one {
		t.Fatalf("bytes = %d, want %d", sc.Bytes(), one)
	}
	sc.Generate("b", []int{4, 5, 6}, 2, opts)
	if sc.Len() != 1 || sc.Bytes() != one {
		t.Fatalf("after cap: resident %d bytes %d, want 1 resident %d bytes", sc.Len(), sc.Bytes(), one)
	}
	if sc.Evictions() == 0 {
		t.Error("memory-cap eviction not counted")
	}
}

// TestSessionTTLEviction advances an injected clock past the idle TTL and
// checks the stale session is swept on the next cache operation.
func TestSessionTTLEviction(t *testing.T) {
	m := sessionTestModel(t)
	sc := m.NewSessionCache(SessionCacheConfig{TTL: time.Minute})
	now := time.Unix(1000, 0)
	var mu sync.Mutex
	sc.now = func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return now
	}
	opts := GenOptions{StopToken: -1}

	sc.Generate("a", []int{1, 2, 3}, 2, opts)
	mu.Lock()
	now = now.Add(30 * time.Second)
	mu.Unlock()
	sc.Generate("b", []int{4, 5, 6}, 2, opts)

	mu.Lock()
	now = now.Add(45 * time.Second) // a idle 75s > TTL, b idle 45s < TTL
	mu.Unlock()
	if _, reused := sc.Generate("b", []int{4, 5, 6, 7}, 2, opts); reused == 0 {
		t.Error("fresh session b was swept")
	}
	if sc.Len() != 1 {
		t.Fatalf("resident = %d, want 1 after TTL sweep", sc.Len())
	}
	if _, reused := sc.Generate("a", []int{1, 2, 3, 7}, 2, opts); reused != 0 {
		t.Error("stale session a survived the TTL")
	}
}

// TestSessionInvalidate drops a session on demand.
func TestSessionInvalidate(t *testing.T) {
	m := sessionTestModel(t)
	sc := m.NewSessionCache(SessionCacheConfig{})
	opts := GenOptions{StopToken: -1}
	sc.Generate("a", []int{1, 2, 3}, 2, opts)
	sc.Invalidate("a")
	sc.Invalidate("missing") // no-op
	if sc.Len() != 0 || sc.Bytes() != 0 {
		t.Fatalf("invalidate left %d resident, %d bytes", sc.Len(), sc.Bytes())
	}
}

// TestSessionCancelRetainsState cancels a warm request before its prime
// completes and checks the reusable state is put back, so the client's next
// request still skips the re-prime and produces byte-identical output.
func TestSessionCancelRetainsState(t *testing.T) {
	m := sessionTestModel(t)
	sc := m.NewSessionCache(SessionCacheConfig{})
	opts := GenOptions{StopToken: -1}
	prefix := []int{3, 14, 1, 5, 9, 2, 6, 5, 8, 7, 11, 4}

	out, _ := sc.Generate("s", prefix, 4, opts)
	next := append(append([]int(nil), prefix...), out...)

	cancel := make(chan struct{})
	close(cancel)
	got, reused := sc.Generate("s", next, 4, GenOptions{StopToken: -1, Cancel: cancel})
	if got != nil {
		t.Fatalf("cancelled generation produced %v", got)
	}
	if want := len(next) - 1; reused != want {
		t.Fatalf("cancelled request reused %d, want %d", reused, want)
	}
	if sc.Active() != sc.Len() {
		t.Fatalf("checkout leaked: active %d, resident %d", sc.Active(), sc.Len())
	}
	warm, reused2 := sc.Generate("s", next, 4, opts)
	if reused2 == 0 {
		t.Error("state was not retained across the cancelled request")
	}
	if cold := m.GenerateCached(next, 4, opts); !equalInts(warm, cold) {
		t.Fatalf("post-cancel warm %v != cold %v", warm, cold)
	}
}

// TestSessionConcurrent hammers the cache from many goroutines — distinct
// ids plus deliberate same-id collisions — and checks outputs stay correct
// under -race with no checkout leaks.
func TestSessionConcurrent(t *testing.T) {
	m := sessionTestModel(t)
	sc := m.NewSessionCache(SessionCacheConfig{MaxSessions: 4})
	opts := GenOptions{StopToken: -1}

	prefixes := [][]int{
		{1, 2, 3, 4}, {5, 6, 7, 8}, {9, 10, 11, 12}, {13, 14, 15, 16},
	}
	cold := make([][]int, len(prefixes))
	for i, p := range prefixes {
		cold[i] = m.GenerateCached(p, 4, opts)
	}

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			i := g % len(prefixes)
			id := string(rune('a' + i)) // ids collide across goroutine pairs
			for iter := 0; iter < 10; iter++ {
				out, _ := sc.Generate(id, prefixes[i], 4, opts)
				if !equalInts(out, cold[i]) {
					t.Errorf("goroutine %d: %v != %v", g, out, cold[i])
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if sc.Active() != sc.Len() {
		t.Fatalf("checkout leaked: active %d, resident %d", sc.Active(), sc.Len())
	}
}

// TestGenerateCachedWindowedReprimeCancelled is the regression test for the
// windowed re-prime loop ignoring cancellation: a cancel arriving while the
// cache is being rebuilt must stop stepping within one step, not after up to
// keep (= 3/4 Ctx) more. Pre-fix this test fails with ~keep extra decode
// steps.
func TestGenerateCachedWindowedReprimeCancelled(t *testing.T) {
	m, err := NewModel(Config{Vocab: 16, Ctx: 16, Dim: 8, Heads: 2, Layers: 1, Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	reg := observe.NewRegistry()
	ins := NewInstrumentation(reg)
	m.Instrument(ins)

	prefix := []int{1, 2, 3, 4, 5, 6, 7, 8}
	cancel := make(chan struct{})
	var picked int
	opts := GenOptions{
		StopToken: -1,
		Cancel:    cancel,
		OnToken: func(tok int) {
			picked++
			// The 9th pick happens with the cache full (pos == Ctx); the
			// decode loop enters the re-prime branch right after this hook.
			if picked == 9 {
				close(cancel)
			}
		},
	}
	before := ins.DecodeSteps.Value()
	m.GenerateCached(prefix, 40, opts)
	steps := ins.DecodeSteps.Value() - before

	// 8 prime steps + 8 cached decode steps fill the cache; a cancelled
	// re-prime must add no further steps.
	if steps > 16 {
		t.Fatalf("cancelled windowed decode ran %d steps, want <= 16 (re-prime ignored cancellation)", steps)
	}
}
