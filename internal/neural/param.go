// Package neural implements a decoder-only transformer language model in
// pure Go: token + learned positional embeddings, multi-head causal
// self-attention, GELU MLP blocks, layer normalisation, residual
// connections, weight tying, full backpropagation and an Adam optimizer with
// the linear/cosine learning-rate schedules the paper trains with.
//
// It is the architecture-faithful counterpart of the paper's CodeGen models:
// the same computation at laptop scale. The model trains on CPU in seconds
// for the corpus sizes used by the examples and experiments.
package neural

import (
	"math"
	"math/rand"
)

// Param is one learnable tensor with its gradient accumulator.
type Param struct {
	Name string
	W    []float64
	G    []float64
}

func newParam(name string, size int) *Param {
	return &Param{Name: name, W: make([]float64, size), G: make([]float64, size)}
}

// initNormal fills the parameter with N(0, std) values.
func (p *Param) initNormal(r *rand.Rand, std float64) {
	for i := range p.W {
		p.W[i] = r.NormFloat64() * std
	}
}

// zeroGrad clears the gradient accumulator.
func (p *Param) zeroGrad() {
	for i := range p.G {
		p.G[i] = 0
	}
}

// Adam is the Adam/AdamW optimizer (Kingma & Ba; Loshchilov & Hutter) over
// a fixed parameter list, with optional global-norm gradient clipping.
type Adam struct {
	params []*Param
	m, v   [][]float64
	beta1  float64
	beta2  float64
	eps    float64
	step   int
	// WeightDecay applies decoupled (AdamW-style) weight decay when > 0.
	WeightDecay float64
	// ClipNorm rescales gradients whose global L2 norm exceeds it (0
	// disables clipping).
	ClipNorm float64
}

// NewAdam creates an optimizer for the given parameters.
func NewAdam(params []*Param) *Adam {
	a := &Adam{params: params, beta1: 0.9, beta2: 0.999, eps: 1e-8}
	a.m = make([][]float64, len(params))
	a.v = make([][]float64, len(params))
	for i, p := range params {
		a.m[i] = make([]float64, len(p.W))
		a.v[i] = make([]float64, len(p.W))
	}
	return a
}

// GradNorm returns the global L2 norm of all gradients.
func (a *Adam) GradNorm() float64 {
	sum := 0.0
	for _, p := range a.params {
		for _, g := range p.G {
			sum += g * g
		}
	}
	return math.Sqrt(sum)
}

// Step applies one Adam update with the given learning rate and zeroes the
// gradients.
func (a *Adam) Step(lr float64) {
	a.step++
	scale := 1.0
	if a.ClipNorm > 0 {
		if norm := a.GradNorm(); norm > a.ClipNorm {
			scale = a.ClipNorm / norm
		}
	}
	bc1 := 1 - math.Pow(a.beta1, float64(a.step))
	bc2 := 1 - math.Pow(a.beta2, float64(a.step))
	for i, p := range a.params {
		m, v := a.m[i], a.v[i]
		for j := range p.W {
			g := p.G[j] * scale
			m[j] = a.beta1*m[j] + (1-a.beta1)*g
			v[j] = a.beta2*v[j] + (1-a.beta2)*g*g
			p.W[j] -= lr * (m[j] / bc1) / (math.Sqrt(v[j]/bc2) + a.eps)
			if a.WeightDecay > 0 {
				// Decoupled decay, applied directly to the weight.
				p.W[j] -= lr * a.WeightDecay * p.W[j]
			}
		}
		p.zeroGrad()
	}
}

// Schedule maps a training step in [0, total) to a learning-rate multiplier.
type Schedule func(step, total int) float64

// LinearDecay decreases linearly from 1 to 0, the pre-training schedule.
func LinearDecay(step, total int) float64 {
	if total <= 1 {
		return 1
	}
	return 1 - float64(step)/float64(total)
}

// CosineDecay decreases with a half cosine from 1 to 0, the fine-tuning
// schedule.
func CosineDecay(step, total int) float64 {
	if total <= 1 {
		return 1
	}
	return 0.5 * (1 + math.Cos(math.Pi*float64(step)/float64(total)))
}

// ConstantLR keeps the learning rate fixed.
func ConstantLR(step, total int) float64 { return 1 }
