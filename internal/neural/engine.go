package neural

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"
)

// ErrEngineClosed is returned by Engine.Submit/Generate after Close: the
// engine is draining or drained and accepts no new sequences.
var ErrEngineClosed = errors.New("neural: engine closed")

// engineQueueFullError marks the engine's backpressure rejection. It
// implements Overloaded() so serving layers can classify it as overload
// (HTTP 503 + Retry-After) without importing this package's sentinels —
// the same structural-typing seam the serve interfaces use.
type engineQueueFullError struct{}

// Error describes the rejection.
func (engineQueueFullError) Error() string { return "neural: engine queue full" }

// Overloaded reports that the error is load shedding, not failure.
func (engineQueueFullError) Overloaded() bool { return true }

// ErrEngineQueueFull is returned by Engine.Submit/Generate when the
// admission queue is at capacity; the caller should shed or retry later.
var ErrEngineQueueFull error = engineQueueFullError{}

// EngineConfig sizes a continuous-batching Engine.
type EngineConfig struct {
	// MaxBatch is how many sequences decode together per step (<= 0: 8).
	MaxBatch int
	// Queue bounds submissions waiting for a batch slot (<= 0: 4*MaxBatch).
	// A full queue rejects Submit with ErrEngineQueueFull.
	Queue int
}

func (c EngineConfig) withDefaults() EngineConfig {
	if c.MaxBatch <= 0 {
		c.MaxBatch = 8
	}
	if c.Queue <= 0 {
		c.Queue = 4 * c.MaxBatch
	}
	return c
}

// EngineStats is a point-in-time snapshot of an Engine's scheduling
// counters.
type EngineStats struct {
	// MaxBatch is the configured step-batch capacity.
	MaxBatch int
	// Active is how many sequences are decoding right now.
	Active int
	// Queued is how many accepted submissions await a batch slot.
	Queued int
	// Admitted counts sequences moved from the queue into the batch.
	Admitted uint64
	// Retired counts sequences that finished, were cancelled, or died
	// queued; Admitted - Retired equals Active plus retirements in flight.
	Retired uint64
	// Steps counts stepBatch invocations; RowSteps counts sequence-steps
	// (one per live row per step), so RowSteps/(Steps*MaxBatch) is the
	// engine's cumulative batch occupancy.
	Steps    uint64
	RowSteps uint64
	// QueueWaitSeconds is the cumulative time admitted sequences spent
	// queued.
	QueueWaitSeconds float64
}

// Occupancy returns the cumulative batch occupancy in [0, 1]: the mean
// fraction of the step batch that held live rows while the engine was
// stepping (idle periods don't count). 1.0 means every step ran full.
func (s EngineStats) Occupancy() float64 {
	if s.Steps == 0 || s.MaxBatch == 0 {
		return 0
	}
	return float64(s.RowSteps) / (float64(s.Steps) * float64(s.MaxBatch))
}

// engineJob is one accepted submission, handed from Submit to the engine
// loop and back through done.
type engineJob struct {
	ctx    context.Context
	prefix []int
	maxNew int
	opts   GenOptions
	enq    time.Time
	out    []int         // result, written by the loop before done closes
	done   chan struct{} // closed when the row has retired
}

// engineRow is a live sequence occupying one slot of the step batch — the
// same prime/decode state machine as GenerateBatch's batchRow, plus the
// job whose waiter it reports to.
type engineRow struct {
	job   *engineJob
	st    *genState
	out   []int
	fed   int // tokens fed into the cache so far
	next  int // token to feed on the upcoming step
	start time.Time
}

// Engine is a continuous-batching decode scheduler: one persistent loop
// owns the model's step batch, admits queued sequences into free slots and
// retires finished ones at every step boundary — vLLM/Orca-style
// iteration-level scheduling, against the request-level batching of
// GenerateBatch, where a batch's slots stay allocated until its last row
// finishes. Short sequences therefore never wait for long ones beyond the
// step in flight, and the batch matmul stays as full as the queue allows.
//
// Per-row semantics are exactly GenerateBatch's: independent prefixes,
// budgets, stop conditions, sampling sources and OnToken hooks, and each
// row's output is token-for-token what a solo GenerateCached call would
// produce. Cancellation (the job's ctx or GenOptions.Cancel) retires a row
// at the next step boundary, freeing its slot for the queue. An Engine is
// safe for concurrent Submit/Generate calls from any number of goroutines.
type Engine struct {
	m   *Model
	cfg EngineConfig

	mu      sync.Mutex
	queue   []*engineJob
	closed  bool
	onAdmit func(waitSeconds float64)

	wake chan struct{} // 1-buffered: submission or Close nudges the loop
	done chan struct{} // closed when the loop has drained and exited

	active    atomic.Int32
	queued    atomic.Int32
	admitted  atomic.Uint64
	retired   atomic.Uint64
	steps     atomic.Uint64
	rowSteps  atomic.Uint64
	waitNanos atomic.Int64
}

// NewEngine starts a continuous-batching engine over the model. The engine
// runs one background scheduling goroutine until Close.
func (m *Model) NewEngine(cfg EngineConfig) *Engine {
	e := &Engine{
		m:    m,
		cfg:  cfg.withDefaults(),
		wake: make(chan struct{}, 1),
		done: make(chan struct{}),
	}
	go e.loop()
	return e
}

// Ticket is the handle to one submitted generation: Submit returns it once
// the sequence is accepted (queued), Wait blocks until the sequence has
// retired and returns its tokens. The split lets a streaming caller emit
// its first bytes after admission is guaranteed but before decoding ends.
type Ticket struct {
	e         *Engine
	job       *engineJob
	solo      bool // decode on the waiter's goroutine (engine can't batch it)
	relay     chan int
	relayDone chan struct{}
}

// Submit queues one sequence for continuous-batched decoding and returns
// its Ticket. It fails fast with ErrEngineQueueFull when the queue is at
// capacity (nothing was enqueued and no OnToken will fire) and
// ErrEngineClosed after Close. Sequences the step batch cannot hold — an
// empty prefix, a non-positive maxNew, or prefix+maxNew overflowing the
// context window — are accepted but decode as a solo GenerateCached call on
// the goroutine that calls Wait, exactly like GenerateBatch's fallback.
//
// opts.OnToken is decoupled from the scheduling loop: tokens are forwarded
// through a per-sequence buffer and delivered in order on a separate
// goroutine, so a hook that blocks (a slow streaming client) stalls only
// its own sequence's delivery, never the engine. Wait returns only after
// the hook has seen every token. A nil ctx means context.Background().
func (e *Engine) Submit(ctx context.Context, prefix []int, maxNew int, opts GenOptions) (*Ticket, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	job := &engineJob{ctx: ctx, prefix: prefix, maxNew: maxNew, opts: opts, done: make(chan struct{})}
	t := &Ticket{e: e, job: job}
	if len(prefix) == 0 || maxNew <= 0 || len(prefix)+maxNew-1 > e.m.cfg.Ctx {
		t.solo = true
		return t, nil
	}
	if opts.OnToken != nil {
		// The relay buffer holds every token the row can produce, so the
		// engine loop's send never blocks.
		orig := opts.OnToken
		t.relay = make(chan int, maxNew)
		t.relayDone = make(chan struct{})
		go func(ch <-chan int, done chan<- struct{}) {
			defer close(done)
			for tok := range ch {
				orig(tok)
			}
		}(t.relay, t.relayDone)
		relay := t.relay
		job.opts.OnToken = func(tok int) { relay <- tok }
	}
	job.enq = time.Now()
	e.mu.Lock()
	switch {
	case e.closed:
		e.mu.Unlock()
		t.stopRelay()
		return nil, ErrEngineClosed
	case len(e.queue) >= e.cfg.Queue:
		e.mu.Unlock()
		t.stopRelay()
		return nil, ErrEngineQueueFull
	}
	e.queue = append(e.queue, job)
	e.queued.Store(int32(len(e.queue)))
	e.mu.Unlock()
	select {
	case e.wake <- struct{}{}:
	default:
	}
	return t, nil
}

// stopRelay tears down an unused OnToken relay after a rejected Submit.
func (t *Ticket) stopRelay() {
	if t.relay != nil {
		close(t.relay)
		<-t.relayDone
		t.relay, t.relayDone = nil, nil
	}
}

// Wait blocks until the sequence has retired and returns its tokens —
// partial output when it was cancelled, matching GenerateCached's
// cancellation semantics. The OnToken hook has completed for every
// returned token before Wait returns.
func (t *Ticket) Wait() []int {
	if t.solo {
		// The original opts (with the caller's OnToken, un-relayed) run on
		// this goroutine, just like a direct GenerateCached call.
		return t.e.m.GenerateCached(t.job.prefix, t.job.maxNew, t.job.opts)
	}
	<-t.job.done
	t.stopRelay()
	return t.job.out
}

// Generate submits one sequence and waits for it: GenerateCached semantics
// (including partial output on cancellation) with continuous-batched
// scheduling, or an immediate ErrEngineQueueFull/ErrEngineClosed.
func (e *Engine) Generate(ctx context.Context, prefix []int, maxNew int, opts GenOptions) ([]int, error) {
	t, err := e.Submit(ctx, prefix, maxNew, opts)
	if err != nil {
		return nil, err
	}
	return t.Wait(), nil
}

// Close stops admission, drains every queued and active sequence, and
// waits (bounded by ctx; nil means wait forever) for the scheduling loop
// to exit. Submissions accepted before Close still complete — a serving
// layer's graceful shutdown needs exactly that. Close is idempotent.
func (e *Engine) Close(ctx context.Context) error {
	e.mu.Lock()
	e.closed = true
	e.mu.Unlock()
	select {
	case e.wake <- struct{}{}:
	default:
	}
	if ctx == nil {
		ctx = context.Background()
	}
	select {
	case <-e.done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Stats returns a snapshot of the engine's scheduling counters.
func (e *Engine) Stats() EngineStats {
	return EngineStats{
		MaxBatch:         e.cfg.MaxBatch,
		Active:           int(e.active.Load()),
		Queued:           int(e.queued.Load()),
		Admitted:         e.admitted.Load(),
		Retired:          e.retired.Load(),
		Steps:            e.steps.Load(),
		RowSteps:         e.rowSteps.Load(),
		QueueWaitSeconds: time.Duration(e.waitNanos.Load()).Seconds(),
	}
}

// SetQueueWaitObserver registers a hook receiving each admitted sequence's
// queue wait in seconds (the serving layer points a histogram here). Call
// before traffic; a nil hook disables it.
func (e *Engine) SetQueueWaitObserver(fn func(waitSeconds float64)) {
	e.mu.Lock()
	e.onAdmit = fn
	e.mu.Unlock()
}

// loop is the scheduler: admit to capacity, step the batch once, retire
// finished rows, repeat; block when idle, exit when closed and drained.
func (e *Engine) loop() {
	defer close(e.done)
	maxB := e.cfg.MaxBatch
	bs := e.m.newBatchScratch(maxB)
	var free []*genState // retired rows' states, reset for reuse
	active := make([]*engineRow, 0, maxB)
	states := make([]*genState, 0, maxB)
	toks := make([]int, 0, maxB)

	for {
		active = e.admit(active, &free)
		if len(active) == 0 {
			e.mu.Lock()
			idle := len(e.queue) == 0
			closed := e.closed
			e.mu.Unlock()
			if idle {
				if closed {
					return
				}
				<-e.wake
			}
			continue
		}

		states, toks = states[:0], toks[:0]
		for _, row := range active {
			states = append(states, row.st)
			toks = append(toks, row.next)
		}
		e.m.stepBatch(states, toks, bs)
		e.steps.Add(1)
		e.rowSteps.Add(uint64(len(active)))

		live := active[:0]
		for _, row := range active {
			row.fed++
			if row.advance() {
				live = append(live, row)
			} else {
				e.retire(row, &free)
			}
		}
		// Rows past the live tail keep *engineRow references alive in the
		// backing array; clear them so retired rows get collected.
		for i := len(live); i < len(active); i++ {
			active[i] = nil
		}
		active = live
		e.active.Store(int32(len(active)))
	}
}

// advance runs one row's post-step state machine — the same transitions as
// GenerateBatch's row loop — and reports whether the row stays live.
func (row *engineRow) advance() bool {
	opts := &row.job.opts
	if row.job.ctx.Err() != nil || opts.cancelled() {
		return false // retired with partial output at the step boundary
	}
	if row.fed < len(row.job.prefix) {
		row.next = row.job.prefix[row.fed]
		return true
	}
	tok := pickToken(row.st.logits, *opts)
	row.out = append(row.out, tok)
	if opts.OnToken != nil {
		opts.OnToken(tok)
	}
	if opts.StopToken > 0 && tok == opts.StopToken {
		return false
	}
	if opts.Stop != nil && opts.Stop(row.out) {
		return false
	}
	if len(row.out) == row.job.maxNew {
		return false
	}
	row.next = tok
	return true
}

// admit fills free batch slots from the queue (FIFO). Jobs whose context
// died while queued retire immediately without costing a slot or a step.
func (e *Engine) admit(active []*engineRow, free *[]*genState) []*engineRow {
	if len(active) >= e.cfg.MaxBatch {
		return active
	}
	e.mu.Lock()
	n := e.cfg.MaxBatch - len(active)
	if n > len(e.queue) {
		n = len(e.queue)
	}
	take := make([]*engineJob, n)
	copy(take, e.queue)
	rest := copy(e.queue, e.queue[n:])
	for i := rest; i < len(e.queue); i++ {
		e.queue[i] = nil
	}
	e.queue = e.queue[:rest]
	e.queued.Store(int32(rest))
	onAdmit := e.onAdmit
	e.mu.Unlock()

	now := time.Now()
	for _, job := range take {
		e.admitted.Add(1)
		e.waitNanos.Add(int64(now.Sub(job.enq)))
		if onAdmit != nil {
			onAdmit(now.Sub(job.enq).Seconds())
		}
		if job.ctx.Err() != nil || job.opts.cancelled() {
			job.out = nil
			close(job.done)
			e.retired.Add(1)
			continue
		}
		var st *genState
		if k := len(*free); k > 0 {
			st, *free = (*free)[k-1], (*free)[:k-1]
		} else {
			st = e.m.newGenState()
		}
		active = append(active, &engineRow{
			job: job, st: st, next: job.prefix[0],
			out:   make([]int, 0, job.maxNew),
			start: now,
		})
	}
	e.active.Store(int32(len(active)))
	return active
}

// retire publishes a finished row's output, releases its waiter, and
// recycles its decode state.
func (e *Engine) retire(row *engineRow, free *[]*genState) {
	row.job.out = row.out
	close(row.job.done)
	e.retired.Add(1)
	if e.m.obs != nil {
		e.m.obs.recordGeneration(len(row.out), time.Since(row.start))
	}
	row.st.reset()
	*free = append(*free, row.st)
	row.st = nil
}
