package neural

import (
	"bytes"
	"math"
	"testing"
)

func trainedPatternModel(t *testing.T) *Model {
	t.Helper()
	m, err := NewModel(Config{Vocab: 16, Ctx: 12, Dim: 16, Heads: 2, Layers: 2, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	seqs := [][]int{
		{1, 2, 3, 4, 5, 6},
		{1, 2, 3, 4, 5, 6},
		{1, 2, 3, 4, 5, 6},
	}
	m.Train(seqs, TrainConfig{Epochs: 80, LR: 3e-3, BatchSize: 3, Seed: 7})
	return m
}

func TestBeamMatchesGreedyOnMemorised(t *testing.T) {
	m := trainedPatternModel(t)
	greedy := m.Generate([]int{1, 2, 3}, 3, GenOptions{StopToken: -1})
	beam := m.GenerateBeam([]int{1, 2, 3}, 3, BeamOptions{Width: 4, StopToken: -1})
	if len(beam) != len(greedy) {
		t.Fatalf("beam %v vs greedy %v", beam, greedy)
	}
	for i := range beam {
		if beam[i] != greedy[i] {
			t.Fatalf("beam %v != greedy %v on a memorised pattern", beam, greedy)
		}
	}
}

func TestBeamScoreAtLeastGreedy(t *testing.T) {
	// Beam search must never return a lower-probability sequence than
	// greedy (greedy is beam width 1).
	m, err := NewModel(Config{Vocab: 20, Ctx: 10, Dim: 8, Heads: 2, Layers: 1, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	prefix := []int{3, 7, 1}
	const steps = 5
	greedy := m.Generate(prefix, steps, GenOptions{StopToken: -1})
	beam := m.GenerateBeam(prefix, steps, BeamOptions{Width: 6, StopToken: -1})
	seqProb := func(gen []int) float64 {
		seq := append(append([]int(nil), prefix...), gen...)
		lp := 0.0
		for i := len(prefix); i < len(seq); i++ {
			tr := m.forward(seq[:i])
			lp += logSoftmax(m.logitsAt(tr, i-1))[seq[i]]
		}
		return lp
	}
	if g, b := seqProb(greedy), seqProb(beam); b < g-1e-9 {
		t.Errorf("beam log-prob %v below greedy %v", b, g)
	}
}

func TestBeamStopToken(t *testing.T) {
	m := trainedPatternModel(t)
	out := m.GenerateBeam([]int{1, 2}, 8, BeamOptions{Width: 3, StopToken: 5})
	for i, tok := range out {
		if tok == 5 && i != len(out)-1 {
			t.Errorf("generation continued past stop token: %v", out)
		}
	}
}

func TestBeamWidthDefault(t *testing.T) {
	m := trainedPatternModel(t)
	out := m.GenerateBeam([]int{1}, 2, BeamOptions{StopToken: -1})
	if len(out) != 2 {
		t.Errorf("default-width beam produced %v", out)
	}
}

func TestLogSoftmaxNormalised(t *testing.T) {
	lp := logSoftmax([]float64{1, 2, 3, -5})
	sum := 0.0
	for _, v := range lp {
		sum += math.Exp(v)
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("softmax sums to %v", sum)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	m := trainedPatternModel(t)
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	seq := []int{1, 2, 3, 4, 5}
	if a, b := m.Loss(seq, nil), back.Loss(seq, nil); math.Abs(a-b) > 1e-12 {
		t.Errorf("loss after reload %v != %v", b, a)
	}
	ga := m.Generate([]int{1, 2}, 4, GenOptions{StopToken: -1})
	gb := back.Generate([]int{1, 2}, 4, GenOptions{StopToken: -1})
	for i := range ga {
		if ga[i] != gb[i] {
			t.Fatalf("generation changed after reload: %v vs %v", ga, gb)
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not a gob"))); err == nil {
		t.Error("garbage accepted")
	}
}

func TestParallelBatchMatchesSerial(t *testing.T) {
	// The parallel gradient path must produce the same training result as
	// the serial path (static assignment keeps it bit-reproducible).
	build := func() *Model {
		m, err := NewModel(Config{Vocab: 12, Ctx: 8, Dim: 8, Heads: 2, Layers: 1, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	seqs := [][]int{
		{1, 2, 3, 4, 5},
		{2, 3, 4, 5, 6},
		{3, 4, 5, 6, 7},
		{4, 5, 6, 7, 8},
	}
	a, b := build(), build()
	// Serial: batch size 1 processes sequences one by one but in a single
	// goroutine; parallel: batch 4 fans out. Compare batch-4 gradients by
	// running one step each with identical shuffles.
	lossA, nA := a.batchGrad(seqs, []int{0, 1, 2, 3})
	lossB, nB := b.batchGrad(seqs, []int{0, 1, 2, 3})
	if nA != nB || math.Abs(lossA-lossB) > 1e-12 {
		t.Fatalf("batch results differ: %v/%d vs %v/%d", lossA, nA, lossB, nB)
	}
	for i, p := range a.Params() {
		q := b.Params()[i]
		for j := range p.G {
			if math.Abs(p.G[j]-q.G[j]) > 1e-12 {
				t.Fatalf("gradient %s[%d] differs: %v vs %v", p.Name, j, p.G[j], q.G[j])
			}
		}
	}
}
