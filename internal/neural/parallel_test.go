package neural

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"
)

// withKernelProcs runs the test body at a fixed kernel worker budget and
// restores the previous one.
func withKernelProcs(t *testing.T, n int, fn func()) {
	t.Helper()
	prev := SetKernelProcs(n)
	defer SetKernelProcs(prev)
	fn()
}

// stepLogits decodes seq token by token on a fresh state and returns a copy
// of the logits after every step.
func stepLogits(m *Model, seq []int) [][]float64 {
	st := m.newGenState()
	var all [][]float64
	for _, tok := range seq {
		lg := st.step(tok)
		cp := make([]float64, len(lg))
		copy(cp, lg)
		all = append(all, cp)
	}
	return all
}

// bitsEqual compares two float slices for exact bit equality (NaN-safe).
func bitsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// TestParallelStepBitIdentical pins the tentpole equivalence claim: the
// single-row step kernel produces bit-for-bit identical logits at every
// worker count, at every position, because each split preserves the serial
// per-element accumulation order.
func TestParallelStepBitIdentical(t *testing.T) {
	m, err := NewModel(Config{Vocab: 48, Ctx: 24, Dim: 24, Heads: 3, Layers: 2, Seed: 41})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	seq := make([]int, m.cfg.Ctx)
	for i := range seq {
		seq[i] = rng.Intn(m.cfg.Vocab)
	}

	var serial [][]float64
	withKernelProcs(t, 1, func() { serial = stepLogits(m, seq) })
	for _, procs := range []int{2, 3, 4, 8} {
		withKernelProcs(t, procs, func() {
			par := stepLogits(m, seq)
			for pos := range serial {
				if !bitsEqual(serial[pos], par[pos]) {
					t.Fatalf("procs=%d pos=%d: parallel step logits differ from serial", procs, pos)
				}
			}
		})
	}
}

// TestParallelStepBatchBitIdentical pins the same claim for the batched
// step: row-parallel stepBatch output equals the serial stepBatch and the
// serial single-row step, bit for bit.
func TestParallelStepBatchBitIdentical(t *testing.T) {
	m, err := NewModel(Config{Vocab: 32, Ctx: 16, Dim: 16, Heads: 4, Layers: 2, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	const B = 5
	const steps = 10
	rng := rand.New(rand.NewSource(9))
	toks := make([][]int, steps)
	for s := range toks {
		toks[s] = make([]int, B)
		for r := range toks[s] {
			toks[s][r] = rng.Intn(m.cfg.Vocab)
		}
	}

	run := func() [][]float64 {
		states := make([]*genState, B)
		for r := range states {
			states[r] = m.newGenState()
		}
		bs := m.newBatchScratch(B)
		var all [][]float64
		for s := 0; s < steps; s++ {
			m.stepBatch(states, toks[s], bs)
			for _, st := range states {
				cp := make([]float64, len(st.logits))
				copy(cp, st.logits)
				all = append(all, cp)
			}
		}
		return all
	}

	var serial [][]float64
	withKernelProcs(t, 1, func() { serial = run() })
	for _, procs := range []int{2, 4, 8} {
		withKernelProcs(t, procs, func() {
			par := run()
			for i := range serial {
				if !bitsEqual(serial[i], par[i]) {
					t.Fatalf("procs=%d row-step %d: parallel stepBatch logits differ from serial", procs, i)
				}
			}
		})
	}
}

// TestParallelKernelTiles exercises the tile/row kernels directly on odd
// shapes (sizes that don't divide evenly across workers, zero inputs for
// the skip path) against their serial output.
func TestParallelKernelTiles(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	fill := func(n int) []float64 {
		v := make([]float64, n)
		for i := range v {
			v[i] = rng.NormFloat64()
		}
		v[rng.Intn(n)] = 0 // exercise the zero-skip branch
		return v
	}
	const in, out, T = 37, 53, 7
	x := fill(T * in)
	w := fill(in * out)
	bias := fill(out)

	type kernel struct {
		name string
		run  func() []float64
	}
	kernels := []kernel{
		{"vecMatInto", func() []float64 {
			dst := make([]float64, out)
			vecMatInto(dst, x[:in], w)
			return dst
		}},
		{"vecMatBiasGeluInto", func() []float64 {
			dst := make([]float64, out)
			vecMatBiasGeluInto(dst, x[:in], w, bias)
			return dst
		}},
		{"vecMatAddBiasInto", func() []float64 {
			acc := fill(out)
			for i := range acc {
				acc[i] = float64(i) // deterministic accumulator
			}
			tmp := make([]float64, out)
			vecMatAddBiasInto(acc, tmp, x[:in], w, bias)
			return acc
		}},
		{"matmulInto", func() []float64 {
			dst := make([]float64, T*out)
			matmulInto(dst, x, T, in, w, out)
			return dst
		}},
		{"projectLogits", func() []float64 {
			lg := make([]float64, out)
			projectLogits(lg, x[:in], w[:out*in], in)
			return lg
		}},
	}
	for _, k := range kernels {
		var want []float64
		withKernelProcs(t, 1, func() { want = k.run() })
		for _, procs := range []int{2, 3, 5, 8} {
			withKernelProcs(t, procs, func() {
				got := k.run()
				if !bitsEqual(want, got) {
					t.Errorf("%s: procs=%d differs from serial", k.name, procs)
				}
			})
		}
	}
}

// TestSetKernelProcs pins the budget clamps: non-positive resets to
// GOMAXPROCS, the cap bounds runaway values, and the previous value is
// returned.
func TestSetKernelProcs(t *testing.T) {
	prev := SetKernelProcs(3)
	defer SetKernelProcs(prev)
	if got := KernelProcs(); got != 3 {
		t.Fatalf("KernelProcs = %d, want 3", got)
	}
	if old := SetKernelProcs(kernelProcsLimit + 10); old != 3 {
		t.Fatalf("SetKernelProcs returned %d, want 3", old)
	}
	if got := KernelProcs(); got != kernelProcsLimit {
		t.Fatalf("KernelProcs = %d, want clamp %d", got, kernelProcsLimit)
	}
	if SetKernelProcs(0); KernelProcs() < 1 {
		t.Fatalf("KernelProcs = %d after reset, want >= 1", KernelProcs())
	}
}

// TestParallelForChunks pins parallelFor's contract: full disjoint
// coverage of [0, n), minChunk respected, dense worker indices.
func TestParallelForChunks(t *testing.T) {
	for _, tc := range []struct{ procs, n, minChunk int }{
		{1, 10, 1}, {4, 10, 1}, {8, 3, 1}, {4, 100, 30}, {4, 0, 1}, {3, 7, 2},
	} {
		t.Run(fmt.Sprintf("p%d_n%d_m%d", tc.procs, tc.n, tc.minChunk), func(t *testing.T) {
			seen := make([]int, tc.n)
			var mu sync.Mutex
			parallelFor(tc.procs, tc.n, tc.minChunk, func(w, lo, hi int) {
				if w >= tc.procs && tc.procs > 0 {
					t.Errorf("worker index %d out of range", w)
				}
				mu.Lock()
				for i := lo; i < hi; i++ {
					seen[i]++
				}
				mu.Unlock()
			})
			for i, c := range seen {
				if c != 1 {
					t.Fatalf("element %d covered %d times", i, c)
				}
			}
		})
	}
}
