package neural

import (
	"testing"
)

// TestOnTokenMatchesOutput: the streaming hook receives exactly the
// returned tokens, in order, on both decode paths — streaming observes the
// generation, it never changes it.
func TestOnTokenMatchesOutput(t *testing.T) {
	m, err := NewModel(Config{Vocab: 24, Ctx: 32, Dim: 16, Heads: 2, Layers: 2, Seed: 41})
	if err != nil {
		t.Fatal(err)
	}
	prefix := []int{1, 2, 3}

	var seen []int
	opts := GenOptions{OnToken: func(tok int) { seen = append(seen, tok) }}
	out := m.GenerateCached(prefix, 12, opts)
	if len(out) == 0 {
		t.Fatal("no tokens generated")
	}
	if len(seen) != len(out) {
		t.Fatalf("hook saw %d tokens, output has %d", len(seen), len(out))
	}
	for i := range out {
		if seen[i] != out[i] {
			t.Fatalf("hook token %d = %d, output %d", i, seen[i], out[i])
		}
	}

	// The hook must not perturb the generation relative to a hook-less run.
	plain := m.GenerateCached(prefix, 12, GenOptions{})
	if len(plain) != len(out) {
		t.Fatalf("hooked run length %d != plain %d", len(out), len(plain))
	}
	for i := range out {
		if plain[i] != out[i] {
			t.Fatalf("hooked generation diverged at %d", i)
		}
	}
}

// TestOnTokenWindowedDecode covers the hook through the overflow regime,
// where the cache re-primes mid-generation.
func TestOnTokenWindowedDecode(t *testing.T) {
	m, err := NewModel(Config{Vocab: 16, Ctx: 12, Dim: 8, Heads: 2, Layers: 1, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	var seen []int
	out := m.GenerateCached([]int{1, 2, 3, 4}, 20, GenOptions{
		OnToken: func(tok int) { seen = append(seen, tok) },
	})
	if len(seen) != len(out) {
		t.Fatalf("hook saw %d tokens across re-primes, output has %d", len(seen), len(out))
	}
	for i := range out {
		if seen[i] != out[i] {
			t.Fatalf("windowed hook token %d = %d, output %d", i, seen[i], out[i])
		}
	}
}

// TestGenerateCancel: closing the cancel channel stops the decode early,
// with the tokens produced so far observed by the hook.
func TestGenerateCancel(t *testing.T) {
	m, err := NewModel(Config{Vocab: 24, Ctx: 32, Dim: 16, Heads: 2, Layers: 2, Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	cancel := make(chan struct{})
	var seen []int
	out := m.GenerateCached([]int{1, 2, 3}, 20, GenOptions{
		Cancel: cancel,
		OnToken: func(tok int) {
			seen = append(seen, tok)
			if len(seen) == 3 {
				close(cancel)
			}
		},
	})
	if len(out) >= 20 {
		t.Fatalf("cancel ignored: %d tokens generated", len(out))
	}
	if len(out) < 3 {
		t.Fatalf("decode stopped before the cancelling token: %d", len(out))
	}
	if len(seen) != len(out) {
		t.Fatalf("hook saw %d, output %d", len(seen), len(out))
	}
}

// TestGenerateCancelBeforeStart: a pre-closed channel aborts before any
// token is produced, including during prefix priming.
func TestGenerateCancelBeforeStart(t *testing.T) {
	m, err := NewModel(Config{Vocab: 16, Ctx: 16, Dim: 8, Heads: 2, Layers: 1, Seed: 44})
	if err != nil {
		t.Fatal(err)
	}
	cancel := make(chan struct{})
	close(cancel)
	if out := m.GenerateCached([]int{1, 2, 3}, 10, GenOptions{Cancel: cancel}); len(out) != 0 {
		t.Fatalf("pre-cancelled generation produced %d tokens", len(out))
	}
	if out := m.Generate([]int{1, 2, 3}, 10, GenOptions{Cancel: cancel}); len(out) != 0 {
		t.Fatalf("pre-cancelled Generate produced %d tokens", len(out))
	}
}

// TestGenerateBatchPerRowHooks: each batched row's hook sees its own tokens
// only, and cancelling one row retires it while the others decode on.
func TestGenerateBatchPerRowHooks(t *testing.T) {
	m, err := NewModel(Config{Vocab: 24, Ctx: 32, Dim: 16, Heads: 2, Layers: 2, Seed: 45})
	if err != nil {
		t.Fatal(err)
	}
	cancel := make(chan struct{})
	seen := make([][]int, 3)
	reqs := []BatchRequest{
		{Prefix: []int{1, 2}, MaxNew: 10, Opts: GenOptions{
			OnToken: func(tok int) { seen[0] = append(seen[0], tok) }}},
		{Prefix: []int{3, 4}, MaxNew: 10, Opts: GenOptions{
			Cancel: cancel,
			OnToken: func(tok int) {
				seen[1] = append(seen[1], tok)
				if len(seen[1]) == 2 {
					close(cancel)
				}
			}}},
		{Prefix: []int{5, 6}, MaxNew: 10, Opts: GenOptions{
			OnToken: func(tok int) { seen[2] = append(seen[2], tok) }}},
	}
	outs := m.GenerateBatch(reqs)
	for i, out := range outs {
		if len(seen[i]) != len(out) {
			t.Fatalf("row %d: hook saw %d tokens, output has %d", i, len(seen[i]), len(out))
		}
		for j := range out {
			if seen[i][j] != out[j] {
				t.Fatalf("row %d token %d: hook %d, output %d", i, j, seen[i][j], out[j])
			}
		}
	}
	if len(outs[1]) >= 10 {
		t.Errorf("cancelled row ran to completion: %d tokens", len(outs[1]))
	}
	if len(outs[0]) != 10 || len(outs[2]) != 10 {
		t.Errorf("uncancelled rows cut short: %d and %d tokens", len(outs[0]), len(outs[2]))
	}
}
