package neural

import (
	"time"

	"wisdom/internal/observe"
)

// Instrumentation bundles the transformer's runtime signals: per-phase
// training timers (forward, backward, optimizer step), training and
// generation throughput in tokens/second, and KV-cache occupancy during
// incremental decoding.
//
// Attach one with Model.Instrument. The default (nil) leaves every hot path
// on a no-op branch: each instrumented site costs a single pointer test, so
// an un-instrumented model generates at the same speed as before this layer
// existed (see BenchmarkGenerate* in obs_test.go).
type Instrumentation struct {
	// Forward / Backward / OptStep time one training phase each, in
	// seconds. Forward covers the full-sequence forward pass; Backward the
	// loss head plus backpropagation; OptStep one Adam update.
	Forward  *observe.Histogram
	Backward *observe.Histogram
	OptStep  *observe.Histogram
	// TrainTokens counts tokens consumed by optimizer steps;
	// TrainTokensPerSec is the throughput of the most recent batch.
	TrainTokens       *observe.Counter
	TrainTokensPerSec *observe.Gauge
	// GenDuration times one Generate/GenerateCached/GenerateBeam call;
	// GenTokens counts emitted tokens; GenTokensPerSec is the rate of the
	// most recent call.
	GenDuration     *observe.Histogram
	GenTokens       *observe.Counter
	GenTokensPerSec *observe.Gauge
	// KVCachePositions is the number of positions held by the live decode
	// state; KVCacheOccupancy is that as a fraction of the context window.
	KVCachePositions *observe.Gauge
	KVCacheOccupancy *observe.Gauge
	// DecodeSteps counts incremental decode steps (one per token fed through
	// the cached step kernel; a batched step of B rows counts B).
	// StepDuration times one step kernel invocation — a single row for
	// step, a whole batch for stepBatch.
	DecodeSteps  *observe.Counter
	StepDuration *observe.Histogram
}

// NewInstrumentation registers the standard wisdom_* metric names on reg
// and returns the bundle. A nil registry yields nil (metrics stay off).
func NewInstrumentation(reg *observe.Registry) *Instrumentation {
	if reg == nil {
		return nil
	}
	phase := func(name string) *observe.Histogram {
		return reg.Histogram("wisdom_train_phase_seconds",
			"Duration of one training phase.", observe.DefBuckets,
			observe.Label{Key: "phase", Value: name})
	}
	return &Instrumentation{
		Forward:  phase("forward"),
		Backward: phase("backward"),
		OptStep:  phase("optimizer_step"),
		TrainTokens: reg.Counter("wisdom_train_tokens_total",
			"Tokens consumed by optimizer steps."),
		TrainTokensPerSec: reg.Gauge("wisdom_train_tokens_per_second",
			"Training throughput of the most recent batch."),
		GenDuration: reg.Histogram("wisdom_generation_duration_seconds",
			"Duration of one generation call.", observe.DefBuckets),
		GenTokens: reg.Counter("wisdom_generated_tokens_total",
			"Tokens emitted by generation calls."),
		GenTokensPerSec: reg.Gauge("wisdom_generation_tokens_per_second",
			"Decoding throughput of the most recent generation call."),
		KVCachePositions: reg.Gauge("wisdom_kvcache_positions",
			"Positions held by the most recent KV-cache decode state."),
		KVCacheOccupancy: reg.Gauge("wisdom_kvcache_occupancy_ratio",
			"KV-cache positions as a fraction of the context window."),
		DecodeSteps: reg.Counter("wisdom_decode_steps_total",
			"Incremental decode steps (token-rows fed through the step kernels)."),
		StepDuration: reg.Histogram("wisdom_decode_step_seconds",
			"Duration of one decode step kernel invocation.",
			observe.ExponentialBuckets(1e-6, 4, 12)),
	}
}

// Instrument attaches ins to the model; nil detaches. Shadow models created
// for parallel batch gradients inherit the attachment. Not safe to call
// concurrently with training or generation.
func (m *Model) Instrument(ins *Instrumentation) { m.obs = ins }

// recordGeneration folds one finished generation call into the bundle.
func (ins *Instrumentation) recordGeneration(tokens int, d time.Duration) {
	ins.GenDuration.Observe(d.Seconds())
	ins.GenTokens.Add(tokens)
	if s := d.Seconds(); s > 0 && tokens > 0 {
		ins.GenTokensPerSec.Set(float64(tokens) / s)
	}
}
