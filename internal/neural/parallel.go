package neural

import (
	"math"
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
)

// The decode kernels below split their work across a bounded set of worker
// goroutines: matmuls by output rows, row-vector products by output-column
// tiles, attention by heads, the logit projection by vocabulary range. Every
// split preserves the serial kernels' per-element accumulation order
// (ascending input index, zero inputs skipped), so the parallel kernels are
// bit-identical to the serial ones at any worker count — pinned by
// TestParallelStepBitIdentical and friends. Work below a per-worker floor
// (kernelMinWork multiply-adds) stays on the calling goroutine, so tiny
// models and single-core hosts pay one atomic load per kernel call and
// nothing else.

// kernelMinWork is the minimum number of multiply-adds a chunk must carry
// before a kernel forks it to a worker; below it, goroutine handoff costs
// more than the arithmetic.
const kernelMinWork = 8192

// maxKernelWorkers bounds the total worker goroutines across all concurrent
// generations. Chunks dispatched beyond the bound run inline on the
// submitting goroutine, so saturation degrades to serial execution instead
// of unbounded goroutine growth.
const maxKernelWorkers = 32

// kernelProcsLimit caps SetKernelProcs/WISDOM_KERNEL_PROCS so scratch
// arenas (sized per worker) stay bounded.
const kernelProcsLimit = 64

var kernelProcsVal atomic.Int32

func init() {
	n := runtime.GOMAXPROCS(0)
	if s := os.Getenv("WISDOM_KERNEL_PROCS"); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v > 0 {
			n = v
		}
	}
	SetKernelProcs(n)
}

// KernelProcs returns the current kernel worker budget: how many goroutines
// one decode kernel call may split its work across. It defaults to
// GOMAXPROCS at startup, overridable with the WISDOM_KERNEL_PROCS
// environment variable or SetKernelProcs.
func KernelProcs() int { return int(kernelProcsVal.Load()) }

// SetKernelProcs sets the kernel worker budget and returns the previous
// value. n <= 0 resets to GOMAXPROCS; values above an internal cap are
// clamped. Parallel and serial kernels are bit-identical, so the setting
// trades only scheduling overhead against core utilisation; 1 forces fully
// serial kernels. Safe to call concurrently, but scratch arenas allocated
// while the budget was lower cap attention-head parallelism at their
// creation-time budget.
func SetKernelProcs(n int) int {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if n > kernelProcsLimit {
		n = kernelProcsLimit
	}
	return int(kernelProcsVal.Swap(int32(n)))
}

// kernelTask is one contiguous chunk of a parallelFor handed to a worker.
type kernelTask struct {
	fn     func(worker, lo, hi int)
	worker int
	lo, hi int
	wg     *sync.WaitGroup
}

func (t kernelTask) run() {
	t.fn(t.worker, t.lo, t.hi)
	t.wg.Done()
}

var (
	kernelQueue   = make(chan kernelTask)
	kernelWorkers atomic.Int32
)

// dispatchKernel hands a chunk to an idle worker, spawns a new worker while
// under the bound, or runs the chunk inline when the pool is saturated.
func dispatchKernel(t kernelTask) {
	select {
	case kernelQueue <- t:
		return
	default:
	}
	if kernelWorkers.Add(1) <= maxKernelWorkers {
		go func(first kernelTask) {
			first.run()
			for t := range kernelQueue {
				t.run()
			}
		}(t)
		return
	}
	kernelWorkers.Add(-1)
	t.run()
}

// parallelFor splits [0, n) into up to procs contiguous chunks and runs fn
// on each, blocking until all complete. Chunks never shrink below minChunk
// elements (the per-worker work floor), the calling goroutine always runs
// chunk 0, and fn receives a dense worker index in [0, procs) it may use to
// select per-worker scratch. procs <= 1, small n, or a saturated worker
// pool all degrade to plain serial execution of the same element order.
func parallelFor(procs, n, minChunk int, fn func(worker, lo, hi int)) {
	if n <= 0 {
		return
	}
	if minChunk < 1 {
		minChunk = 1
	}
	if maxP := n / minChunk; procs > maxP {
		procs = maxP
	}
	if procs <= 1 {
		fn(0, 0, n)
		return
	}
	chunk := (n + procs - 1) / procs
	var wg sync.WaitGroup
	for w := 1; w*chunk < n; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		dispatchKernel(kernelTask{fn: fn, worker: w, lo: lo, hi: hi, wg: &wg})
	}
	fn(0, 0, chunk)
	wg.Wait()
}

// serialChunk reports whether parallelFor(procs, n, minChunk, fn) would run
// fn as one inline chunk. Kernels branch on it before constructing their
// chunk closure: a closure handed to parallelFor escapes to the heap even
// when the serial path runs, so the fast path must avoid creating it at all
// to keep serial decoding allocation-free.
func serialChunk(procs, n, minChunk int) bool {
	if minChunk < 1 {
		minChunk = 1
	}
	if maxP := n / minChunk; procs > maxP {
		procs = maxP
	}
	return procs <= 1
}

// minTileCols is the column-tile floor for a row-vector product with in
// inputs: tiles carry at least kernelMinWork multiply-adds.
func minTileCols(in int) int {
	if in <= 0 {
		return 1
	}
	c := kernelMinWork / in
	if c < 1 {
		c = 1
	}
	return c
}

// minMatRows is the row-chunk floor for a T-row matmul of in x out weight.
func minMatRows(in, out int) int {
	r := kernelMinWork / (in * out)
	if r < 1 {
		r = 1
	}
	return r
}

// vecMatTile accumulates one column tile [lo, hi) of dst = x @ w
// (w: len(x) x out). Identical element order to the full serial product:
// each dst[j] sums x[i]*w[i*out+j] over ascending i with zero inputs
// skipped.
func vecMatTile(dst, x, w []float64, out, lo, hi int) {
	dr := dst[lo:hi]
	for j := range dr {
		dr[j] = 0
	}
	for i, xv := range x {
		if xv == 0 {
			continue
		}
		wr := w[i*out+lo : i*out+hi]
		for j, wv := range wr {
			dr[j] += xv * wv
		}
	}
}

// vecMatBiasGeluTile is one column tile of the fused MLP up-projection:
// dst[lo:hi] = gelu((x @ w)[lo:hi] + bias[lo:hi]).
func vecMatBiasGeluTile(dst, x, w, bias []float64, out, lo, hi int) {
	vecMatTile(dst, x, w, out, lo, hi)
	for j := lo; j < hi; j++ {
		dst[j] = gelu(dst[j] + bias[j])
	}
}

// vecMatBiasGeluInto computes dst[j] = gelu((x @ w)[j] + bias[j]) — the MLP
// up-projection with its bias and activation fused into the tile pass, so
// the tile is read again while cache-hot instead of in two full sweeps.
func vecMatBiasGeluInto(dst, x, w, bias []float64) {
	out := len(dst)
	procs, minC := KernelProcs(), minTileCols(len(x))
	if serialChunk(procs, out, minC) {
		vecMatBiasGeluTile(dst, x, w, bias, out, 0, out)
		return
	}
	parallelFor(procs, out, minC, func(_, lo, hi int) {
		vecMatBiasGeluTile(dst, x, w, bias, out, lo, hi)
	})
}

// vecMatAddBiasInto computes acc[j] += (x @ w)[j] + bias[j] (bias may be
// nil), the fused residual update of the attention and MLP output
// projections. tmp is the product buffer (len(acc)); the accumulation adds
// the completed dot product to acc exactly like the unfused
// product-then-add sequence did.
func vecMatAddBiasInto(acc, tmp, x, w, bias []float64) {
	out := len(acc)
	procs, minC := KernelProcs(), minTileCols(len(x))
	if serialChunk(procs, out, minC) {
		vecMatAddBiasTile(acc, tmp, x, w, bias, out, 0, out)
		return
	}
	parallelFor(procs, out, minC, func(_, lo, hi int) {
		vecMatAddBiasTile(acc, tmp, x, w, bias, out, lo, hi)
	})
}

// vecMatAddBiasTile is one column tile of the fused residual update.
func vecMatAddBiasTile(acc, tmp, x, w, bias []float64, out, lo, hi int) {
	vecMatTile(tmp, x, w, out, lo, hi)
	if bias != nil {
		for j := lo; j < hi; j++ {
			acc[j] += tmp[j] + bias[j]
		}
	} else {
		for j := lo; j < hi; j++ {
			acc[j] += tmp[j]
		}
	}
}

// matmulRows runs rows [t0, t1) of dst = x @ w (x: T x in, w: in x out)
// with the exact serial accumulation order per row.
func matmulRows(dst, x []float64, t0, t1, in int, w []float64, out int) {
	for t := t0; t < t1; t++ {
		yr := dst[t*out : (t+1)*out]
		for i := range yr {
			yr[i] = 0
		}
		xr := x[t*in : (t+1)*in]
		for i, xv := range xr {
			if xv == 0 {
				continue
			}
			wr := w[i*out : (i+1)*out]
			for j, wv := range wr {
				yr[j] += xv * wv
			}
		}
	}
}

// matmulBiasGeluRows is matmulRows with the bias add and GELU fused onto
// each finished row while it is cache-hot.
func matmulBiasGeluRows(dst, x []float64, t0, t1, in int, w []float64, out int, bias []float64) {
	matmulRows(dst, x, t0, t1, in, w, out)
	for t := t0; t < t1; t++ {
		yr := dst[t*out : (t+1)*out]
		for j := range yr {
			yr[j] = gelu(yr[j] + bias[j])
		}
	}
}

// matmulAddBiasRows computes acc[t*out+j] += (x @ w)[t*out+j] + bias[j] for
// rows [t0, t1) — the batched form of vecMatAddBiasInto. tmp holds the
// product rows; bias may be nil.
func matmulAddBiasRows(acc, tmp, x []float64, t0, t1, in int, w []float64, out int, bias []float64) {
	matmulRows(tmp, x, t0, t1, in, w, out)
	for t := t0; t < t1; t++ {
		ar := acc[t*out : (t+1)*out]
		tr := tmp[t*out : (t+1)*out]
		if bias != nil {
			for j := range ar {
				ar[j] += tr[j] + bias[j]
			}
		} else {
			for j := range ar {
				ar[j] += tr[j]
			}
		}
	}
}

// attendHeads runs heads [h0, h1) of causal attention for one query row over
// the cached keys/values, writing each head's output into its slice of att.
// scores must have length T. Heads touch disjoint att ranges, so head
// ranges parallelize without synchronisation.
func attendHeads(att, q, k, v, scores []float64, h0, h1, dh, d int, scale float64) {
	T := len(scores)
	for h := h0; h < h1; h++ {
		off := h * dh
		for i := 0; i < dh; i++ {
			att[off+i] = 0
		}
		maxs := math.Inf(-1)
		for u := 0; u < T; u++ {
			dot := 0.0
			for i := 0; i < dh; i++ {
				dot += q[off+i] * k[u*d+off+i]
			}
			dot *= scale
			scores[u] = dot
			if dot > maxs {
				maxs = dot
			}
		}
		sum := 0.0
		for u := 0; u < T; u++ {
			scores[u] = math.Exp(scores[u] - maxs)
			sum += scores[u]
		}
		for u := 0; u < T; u++ {
			p := scores[u] / sum
			for i := 0; i < dh; i++ {
				att[off+i] += p * v[u*d+off+i]
			}
		}
	}
}

// attendRowPar is attendRow split across heads. scores carries one row of
// ctxCap positions per worker the owning scratch arena was sized for; the
// effective parallelism is min(KernelProcs, scratch rows), and each worker
// scores into its own row so no buffer is shared.
func attendRowPar(att, q, k, v, scores []float64, ctxCap, T, heads, dh, d int, scale float64) {
	rows := len(scores) / ctxCap
	procs := KernelProcs()
	if procs > rows {
		procs = rows
	}
	min := minAttendHeads(T, dh)
	if serialChunk(procs, heads, min) {
		attendHeads(att, q, k, v, scores[:T], 0, heads, dh, d, scale)
		return
	}
	parallelFor(procs, heads, min, func(w, h0, h1 int) {
		attendHeads(att, q, k, v, scores[w*ctxCap:w*ctxCap+T], h0, h1, dh, d, scale)
	})
}

// minAttendHeads is the per-worker head floor: one head costs about
// 3*T*dh multiply-adds (score, softmax, weighted sum).
func minAttendHeads(T, dh int) int {
	work := 3 * T * dh
	if work <= 0 {
		return 1
	}
	h := kernelMinWork / work
	if h < 1 {
		h = 1
	}
	return h
}

// projectLogitsRange fills logits[lo:hi] with hf @ tokEmb^T over that
// vocabulary range.
func projectLogitsRange(logits, hf, emb []float64, d, lo, hi int) {
	for tokID := lo; tokID < hi; tokID++ {
		e := emb[tokID*d : (tokID+1)*d]
		dot := 0.0
		for i := 0; i < d; i++ {
			dot += hf[i] * e[i]
		}
		logits[tokID] = dot
	}
}
