package neural

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"
)

func engineTestModel(t *testing.T) *Model {
	t.Helper()
	m, err := NewModel(Config{Vocab: 32, Ctx: 48, Dim: 16, Heads: 4, Layers: 2, Seed: 33})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func closeEngine(t *testing.T, e *Engine) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := e.Close(ctx); err != nil {
		t.Fatalf("engine Close: %v", err)
	}
}

func intsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestEngineMatchesGenerateCached pins the engine's core contract: a
// sequence decoded through the continuous-batching loop is token-for-token
// what a solo GenerateCached call produces, greedy and sampled, with and
// without stop predicates.
func TestEngineMatchesGenerateCached(t *testing.T) {
	m := engineTestModel(t)
	e := m.NewEngine(EngineConfig{MaxBatch: 4})
	defer closeEngine(t, e)

	cases := []struct {
		name   string
		prefix []int
		maxNew int
		opts   func() GenOptions
	}{
		{"greedy", []int{3, 1, 4, 1, 5}, 12, func() GenOptions { return GenOptions{} }},
		{"sampled", []int{2, 7, 2}, 10, func() GenOptions {
			return GenOptions{Temperature: 0.9, TopK: 5, Rand: rand.New(rand.NewSource(17))}
		}},
		{"stop-token", []int{9, 8, 7}, 20, func() GenOptions { return GenOptions{StopToken: 4} }},
		{"stop-func", []int{5, 5}, 20, func() GenOptions {
			return GenOptions{Stop: func(out []int) bool { return len(out) >= 6 }}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			want := m.GenerateCached(tc.prefix, tc.maxNew, tc.opts())
			got, err := e.Generate(context.Background(), tc.prefix, tc.maxNew, tc.opts())
			if err != nil {
				t.Fatalf("engine Generate: %v", err)
			}
			if !intsEqual(want, got) {
				t.Fatalf("engine output %v != GenerateCached %v", got, want)
			}
		})
	}
}

// TestEngineAdmitMidStream pins per-step admission: a request submitted
// while another sequence is already decoding joins the batch at the next
// step boundary, and both outputs stay equal to their solo decodes.
func TestEngineAdmitMidStream(t *testing.T) {
	m := engineTestModel(t)
	e := m.NewEngine(EngineConfig{MaxBatch: 4})
	defer closeEngine(t, e)

	longPrefix := []int{1, 2, 3}
	const longNew = 30
	started := make(chan struct{})
	var once bool
	opts := GenOptions{OnToken: func(int) {
		if !once {
			once = true
			close(started)
		}
	}}
	tk, err := e.Submit(context.Background(), longPrefix, longNew, opts)
	if err != nil {
		t.Fatalf("submit long: %v", err)
	}
	<-started // the long row is decoding now

	shortPrefix := []int{6, 6}
	want := m.GenerateCached(shortPrefix, 4, GenOptions{})
	got, err := e.Generate(context.Background(), shortPrefix, 4, GenOptions{})
	if err != nil {
		t.Fatalf("submit short mid-decode: %v", err)
	}
	if !intsEqual(want, got) {
		t.Fatalf("mid-decode admission changed output: %v != %v", got, want)
	}
	if out := tk.Wait(); !intsEqual(out, m.GenerateCached(longPrefix, longNew, GenOptions{})) {
		t.Fatalf("long row output diverged after mid-decode admission")
	}
}

// TestEngineShortFinishesFirst pins iteration-level scheduling: a short
// request admitted next to a long one retires as soon as its own budget is
// done instead of waiting for the batch, the property that separates
// continuous batching from request-level batching. Both rows record their
// retirement through Stop predicates, which run on the engine loop, so the
// observed order is the loop's actual retirement order.
func TestEngineShortFinishesFirst(t *testing.T) {
	m := engineTestModel(t)
	e := m.NewEngine(EngineConfig{MaxBatch: 4})
	defer closeEngine(t, e)

	started := make(chan struct{})
	shortQueued := make(chan struct{})
	var order []string // appended only from the engine loop goroutine
	tkLong, err := e.Submit(context.Background(), []int{1, 2, 3}, 45,
		GenOptions{Stop: func(out []int) bool {
			if len(out) == 1 {
				// Pause the loop right after the long row's first token until
				// the short request is in the queue, so the two provably
				// overlap even on a single CPU.
				close(started)
				<-shortQueued
			}
			if len(out) >= 40 {
				order = append(order, "long")
				return true
			}
			return false
		}})
	if err != nil {
		t.Fatal(err)
	}
	<-started // the long row is decoding; the short one joins mid-flight
	tkShort, err := e.Submit(context.Background(), []int{4, 5}, 10,
		GenOptions{Stop: func(out []int) bool {
			if len(out) >= 2 {
				order = append(order, "short")
				return true
			}
			return false
		}})
	if err != nil {
		t.Fatal(err)
	}
	close(shortQueued)
	tkShort.Wait()
	tkLong.Wait() // both retired: order is complete and race-free to read
	if len(order) != 2 || order[0] != "short" || order[1] != "long" {
		t.Fatalf("retirement order %v, want [short long]", order)
	}
}

// TestEngineCancelFreesSlot pins retire-on-cancel: cancelling an active
// row's context retires it at the next step boundary with its partial
// output, and the freed slot is refilled from the queue.
func TestEngineCancelFreesSlot(t *testing.T) {
	m := engineTestModel(t)
	e := m.NewEngine(EngineConfig{MaxBatch: 1, Queue: 4})
	defer closeEngine(t, e)

	// started confirms A is active (its first token was picked) before the
	// test cancels it; gate then blocks the engine loop inside A's Stop
	// predicate so the test controls exactly when the loop observes the
	// cancellation.
	started := make(chan struct{})
	var once bool
	gate := make(chan struct{})
	ctxA, cancelA := context.WithCancel(context.Background())
	defer cancelA()
	tkA, err := e.Submit(ctxA, []int{2, 2}, 30, GenOptions{
		OnToken: func(int) {
			if !once {
				once = true
				close(started)
			}
		},
		Stop: func(out []int) bool {
			<-gate
			return false
		}})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	tkB, err := e.Submit(context.Background(), []int{7}, 3, GenOptions{})
	if err != nil {
		t.Fatal(err)
	}

	cancelA()
	close(gate) // loop resumes; next step boundary sees the dead context

	if out := tkB.Wait(); len(out) != 3 {
		t.Fatalf("queued request after cancel produced %d tokens, want 3", len(out))
	}
	out := tkA.Wait()
	if len(out) == 0 || len(out) >= 30 {
		t.Fatalf("cancelled row returned %d tokens, want partial output", len(out))
	}

	st := e.Stats()
	if st.Active != 0 || st.Queued != 0 {
		t.Fatalf("slots leaked after cancel: active=%d queued=%d", st.Active, st.Queued)
	}
	if st.Admitted != st.Retired {
		t.Fatalf("admitted %d != retired %d after drain", st.Admitted, st.Retired)
	}
}

// TestEngineQueueFull pins backpressure: with the single batch slot held
// and the queue at capacity, Submit fails fast with ErrEngineQueueFull,
// which classifies structurally as overload.
func TestEngineQueueFull(t *testing.T) {
	m := engineTestModel(t)
	e := m.NewEngine(EngineConfig{MaxBatch: 1, Queue: 1})
	defer closeEngine(t, e)

	started := make(chan struct{})
	var once bool
	gate := make(chan struct{})
	gated := GenOptions{
		OnToken: func(int) {
			if !once {
				once = true
				close(started)
			}
		},
		Stop: func(out []int) bool {
			<-gate
			return len(out) >= 2
		}}
	tkA, err := e.Submit(context.Background(), []int{1}, 5, gated)
	if err != nil {
		t.Fatal(err)
	}
	<-started // A holds the single batch slot; the loop is gated in its Stop
	tkB, err := e.Submit(context.Background(), []int{2}, 2, GenOptions{})
	if err != nil {
		t.Fatal(err)
	}

	if _, err := e.Submit(context.Background(), []int{3}, 2, GenOptions{}); !errors.Is(err, ErrEngineQueueFull) {
		t.Fatalf("submit into full queue: err = %v, want ErrEngineQueueFull", err)
	}
	var ov interface{ Overloaded() bool }
	if !errors.As(ErrEngineQueueFull, &ov) || !ov.Overloaded() {
		t.Fatal("ErrEngineQueueFull does not classify as Overloaded")
	}

	close(gate)
	tkA.Wait()
	tkB.Wait()
}

// TestEngineCloseDrains pins graceful shutdown: Close stops admission but
// every already-accepted submission — active or still queued — completes.
func TestEngineCloseDrains(t *testing.T) {
	m := engineTestModel(t)
	e := m.NewEngine(EngineConfig{MaxBatch: 1, Queue: 8})

	var tickets []*Ticket
	for i := 0; i < 3; i++ {
		tk, err := e.Submit(context.Background(), []int{i + 1, i + 2}, 4, GenOptions{})
		if err != nil {
			t.Fatal(err)
		}
		tickets = append(tickets, tk)
	}
	closeEngine(t, e)

	for i, tk := range tickets {
		if out := tk.Wait(); len(out) != 4 {
			t.Fatalf("drained job %d produced %d tokens, want 4", i, len(out))
		}
	}
	if _, err := e.Submit(context.Background(), []int{1}, 1, GenOptions{}); !errors.Is(err, ErrEngineClosed) {
		t.Fatalf("submit after Close: err = %v, want ErrEngineClosed", err)
	}
	if _, err := e.Generate(context.Background(), []int{1}, 1, GenOptions{}); !errors.Is(err, ErrEngineClosed) {
		t.Fatalf("generate after Close: err = %v, want ErrEngineClosed", err)
	}
}

// TestEngineOccupancy pins the issue's acceptance bar: under a saturated
// mixed-length load, cumulative batch occupancy stays at or above 80%,
// because retired rows are replaced from the queue at every step boundary.
func TestEngineOccupancy(t *testing.T) {
	m := engineTestModel(t)
	e := m.NewEngine(EngineConfig{MaxBatch: 4, Queue: 64})

	rng := rand.New(rand.NewSource(5))
	var tickets []*Ticket
	for i := 0; i < 64; i++ {
		prefix := []int{rng.Intn(m.cfg.Vocab), rng.Intn(m.cfg.Vocab)}
		maxNew := 6 + rng.Intn(10) // mixed lengths
		tk, err := e.Submit(context.Background(), prefix, maxNew, GenOptions{})
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		tickets = append(tickets, tk)
	}
	for _, tk := range tickets {
		tk.Wait()
	}
	closeEngine(t, e)

	st := e.Stats()
	if occ := st.Occupancy(); occ < 0.8 {
		t.Fatalf("batch occupancy %.3f under mixed-length saturation, want >= 0.8 (steps=%d rowSteps=%d)",
			occ, st.Steps, st.RowSteps)
	}
	if st.Admitted != 64 || st.Retired != 64 {
		t.Fatalf("admitted=%d retired=%d, want 64/64", st.Admitted, st.Retired)
	}
	if st.QueueWaitSeconds < 0 {
		t.Fatalf("negative queue wait %f", st.QueueWaitSeconds)
	}
}

// TestEngineOnTokenRelay pins streaming delivery: the relayed OnToken hook
// sees every generated token in order, and all deliveries complete before
// Wait returns, even though the hook runs off the engine loop.
func TestEngineOnTokenRelay(t *testing.T) {
	m := engineTestModel(t)
	e := m.NewEngine(EngineConfig{MaxBatch: 2})
	defer closeEngine(t, e)

	var streamed []int
	tk, err := e.Submit(context.Background(), []int{3, 9}, 8, GenOptions{OnToken: func(tok int) {
		time.Sleep(100 * time.Microsecond) // a slow client must not stall the loop
		streamed = append(streamed, tok)
	}})
	if err != nil {
		t.Fatal(err)
	}
	out := tk.Wait()
	// Wait's happens-before guarantee makes reading streamed race-free here.
	if !intsEqual(streamed, out) {
		t.Fatalf("streamed tokens %v != returned tokens %v", streamed, out)
	}
}

// TestEngineSoloFallback pins the escape hatch: sequences the step batch
// cannot hold decode as a solo GenerateCached call with identical output.
func TestEngineSoloFallback(t *testing.T) {
	m := engineTestModel(t)
	e := m.NewEngine(EngineConfig{MaxBatch: 2})
	defer closeEngine(t, e)

	if out, err := e.Generate(context.Background(), nil, 5, GenOptions{}); err != nil || out != nil {
		t.Fatalf("empty prefix: out=%v err=%v, want nil/nil", out, err)
	}

	// prefix+maxNew overflows Ctx, forcing the windowed solo path.
	prefix := make([]int, m.cfg.Ctx-2)
	for i := range prefix {
		prefix[i] = (i*7 + 3) % m.cfg.Vocab
	}
	maxNew := 10
	want := m.GenerateCached(prefix, maxNew, GenOptions{})
	got, err := e.Generate(context.Background(), prefix, maxNew, GenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !intsEqual(want, got) {
		t.Fatalf("solo fallback output %v != GenerateCached %v", got, want)
	}
}

// TestEngineQueueWaitObserver pins the metrics hook: each admission reports
// a non-negative wait to the registered observer exactly once.
func TestEngineQueueWaitObserver(t *testing.T) {
	m := engineTestModel(t)
	e := m.NewEngine(EngineConfig{MaxBatch: 2})
	waits := make(chan float64, 8)
	e.SetQueueWaitObserver(func(w float64) { waits <- w })

	for i := 0; i < 3; i++ {
		if _, err := e.Generate(context.Background(), []int{1, 2}, 2, GenOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	closeEngine(t, e)
	close(waits)
	n := 0
	for w := range waits {
		if w < 0 {
			t.Fatalf("negative queue wait %f", w)
		}
		n++
	}
	if n != 3 {
		t.Fatalf("observer fired %d times, want 3", n)
	}
}
