package neural

import (
	"strings"
	"testing"

	"wisdom/internal/observe"
)

func obsTestModel(t testing.TB) *Model {
	t.Helper()
	m, err := NewModel(Config{Vocab: 64, Ctx: 64, Dim: 32, Heads: 4, Layers: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestInstrumentationNilRegistry(t *testing.T) {
	if NewInstrumentation(nil) != nil {
		t.Error("nil registry must yield nil instrumentation")
	}
}

func TestTrainInstrumented(t *testing.T) {
	m := obsTestModel(t)
	reg := observe.NewRegistry()
	ins := NewInstrumentation(reg)
	m.Instrument(ins)

	seqs := [][]int{{1, 2, 3, 4, 5, 6}, {7, 8, 9, 10}, {2, 4, 6, 8, 10, 12}, {1, 3, 5, 7}}
	m.Train(seqs, TrainConfig{Epochs: 1, BatchSize: 2, Seed: 1})

	if ins.Forward.Count() == 0 || ins.Backward.Count() == 0 {
		t.Errorf("phase timers empty: forward %d backward %d", ins.Forward.Count(), ins.Backward.Count())
	}
	if ins.OptStep.Count() != 2 {
		t.Errorf("optimizer steps observed = %d, want 2", ins.OptStep.Count())
	}
	wantTokens := uint64(6 + 4 + 6 + 4)
	if got := ins.TrainTokens.Value(); got != wantTokens {
		t.Errorf("trained tokens = %d, want %d", got, wantTokens)
	}
	if ins.TrainTokensPerSec.Value() <= 0 {
		t.Error("train tokens/sec not set")
	}
}

func TestGenerateInstrumented(t *testing.T) {
	m := obsTestModel(t)
	reg := observe.NewRegistry()
	ins := NewInstrumentation(reg)
	m.Instrument(ins)

	prefix := []int{1, 2, 3}

	out := m.Generate(prefix, 8, GenOptions{StopToken: -1})
	if ins.GenDuration.Count() != 1 || ins.GenTokens.Value() != uint64(len(out)) {
		t.Errorf("full-forward generation: calls %d tokens %d want %d",
			ins.GenDuration.Count(), ins.GenTokens.Value(), len(out))
	}

	out2 := m.GenerateCached(prefix, 8, GenOptions{StopToken: -1})
	if ins.GenDuration.Count() != 2 {
		t.Errorf("cached generation not timed: calls = %d", ins.GenDuration.Count())
	}
	// The final emitted token is never fed back through the cache, so the
	// state holds prefix + generated - 1 positions.
	if got, want := ins.KVCachePositions.Value(), float64(len(prefix)+len(out2)-1); got != want {
		t.Errorf("kv positions = %v, want %v", got, want)
	}
	occ := ins.KVCacheOccupancy.Value()
	if occ <= 0 || occ > 1 {
		t.Errorf("kv occupancy = %v", occ)
	}

	m.GenerateBeam(prefix, 4, BeamOptions{Width: 2, StopToken: -1})
	if ins.GenDuration.Count() != 3 {
		t.Errorf("beam generation not timed: calls = %d", ins.GenDuration.Count())
	}

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"wisdom_generated_tokens_total",
		"wisdom_generation_duration_seconds_count",
		"wisdom_kvcache_occupancy_ratio",
	} {
		if !strings.Contains(sb.String(), name) {
			t.Errorf("exposition missing %s", name)
		}
	}
}

// TestInstrumentedOutputsUnchanged pins that attaching instrumentation
// cannot alter what the model computes.
func TestInstrumentedOutputsUnchanged(t *testing.T) {
	plain := obsTestModel(t)
	instr := obsTestModel(t)
	instr.Instrument(NewInstrumentation(observe.NewRegistry()))

	prefix := []int{5, 6, 7}
	a := plain.GenerateCached(prefix, 10, GenOptions{StopToken: -1})
	b := instr.GenerateCached(prefix, 10, GenOptions{StopToken: -1})
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("outputs diverge at %d: %d vs %d", i, a[i], b[i])
		}
	}

	seqs := [][]int{{1, 2, 3, 4}, {5, 6, 7, 8}}
	la := plain.Train(seqs, TrainConfig{Epochs: 1, Seed: 3})
	lb := instr.Train(seqs, TrainConfig{Epochs: 1, Seed: 3})
	if la != lb {
		t.Errorf("losses diverge: %v vs %v", la, lb)
	}
}

// The acceptance budget for this layer: the no-op (metrics disabled) path
// must add <2% to Generate. Compare BenchmarkGenerateNoMetrics against
// BenchmarkGenerateMetricsEnabled — the disabled path is a handful of nil
// pointer tests per call, far below per-token matmul cost.
func benchGenerate(b *testing.B, instrumented bool) {
	m := obsTestModel(b)
	if instrumented {
		m.Instrument(NewInstrumentation(observe.NewRegistry()))
	}
	prefix := []int{1, 2, 3, 4}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.GenerateCached(prefix, 32, GenOptions{StopToken: -1})
	}
}

func BenchmarkGenerateNoMetrics(b *testing.B)      { benchGenerate(b, false) }
func BenchmarkGenerateMetricsEnabled(b *testing.B) { benchGenerate(b, true) }
