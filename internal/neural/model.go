package neural

import (
	"fmt"
	"math"
	"math/rand"
	"time"
)

// Config defines a transformer architecture.
type Config struct {
	// Vocab is the vocabulary size.
	Vocab int
	// Ctx is the maximum context length (positions).
	Ctx int
	// Dim is the residual stream width; must be divisible by Heads.
	Dim int
	// Heads is the number of attention heads.
	Heads int
	// Layers is the number of transformer blocks.
	Layers int
	// MLPHidden is the MLP hidden width; 0 means 4*Dim.
	MLPHidden int
	// Seed initialises the weights deterministically.
	Seed int64
}

func (c Config) validate() error {
	switch {
	case c.Vocab < 2:
		return fmt.Errorf("neural: vocab %d < 2", c.Vocab)
	case c.Ctx < 1:
		return fmt.Errorf("neural: ctx %d < 1", c.Ctx)
	case c.Heads < 1 || c.Dim%c.Heads != 0:
		return fmt.Errorf("neural: dim %d not divisible by heads %d", c.Dim, c.Heads)
	case c.Layers < 1:
		return fmt.Errorf("neural: layers %d < 1", c.Layers)
	}
	return nil
}

// block holds the parameters of one transformer layer.
type block struct {
	ln1g, ln1b *Param
	wq, wk, wv *Param // Dim x Dim
	wo         *Param // Dim x Dim
	ln2g, ln2b *Param
	w1, b1     *Param // Dim x Hidden, Hidden
	w2, b2     *Param // Hidden x Dim, Dim
}

// Model is a decoder-only transformer language model with tied input/output
// embeddings. Train mutates the parameters; after training, every decode
// path (Generate, GenerateCached, GenerateBeam, Loss) reads frozen weights
// and allocates its own working state per call, so a trained model is safe
// for concurrent use (see TestConcurrentDecodePathsMatchSerial).
type Model struct {
	cfg    Config
	tokEmb *Param // Vocab x Dim (also the output projection, tied)
	posEmb *Param // Ctx x Dim
	blocks []*block
	lnfg   *Param
	lnfb   *Param
	params []*Param
	obs    *Instrumentation // nil = metrics off (the default)
}

// NewModel builds a model with small random initial weights.
func NewModel(cfg Config) (*Model, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.MLPHidden == 0 {
		cfg.MLPHidden = 4 * cfg.Dim
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	m := &Model{cfg: cfg}
	d, h := cfg.Dim, cfg.MLPHidden
	std := 0.02

	add := func(p *Param) *Param { m.params = append(m.params, p); return p }
	m.tokEmb = add(newParam("tok_emb", cfg.Vocab*d))
	m.tokEmb.initNormal(r, std)
	m.posEmb = add(newParam("pos_emb", cfg.Ctx*d))
	m.posEmb.initNormal(r, std)
	for l := 0; l < cfg.Layers; l++ {
		b := &block{
			ln1g: add(newParam(fmt.Sprintf("l%d.ln1g", l), d)),
			ln1b: add(newParam(fmt.Sprintf("l%d.ln1b", l), d)),
			wq:   add(newParam(fmt.Sprintf("l%d.wq", l), d*d)),
			wk:   add(newParam(fmt.Sprintf("l%d.wk", l), d*d)),
			wv:   add(newParam(fmt.Sprintf("l%d.wv", l), d*d)),
			wo:   add(newParam(fmt.Sprintf("l%d.wo", l), d*d)),
			ln2g: add(newParam(fmt.Sprintf("l%d.ln2g", l), d)),
			ln2b: add(newParam(fmt.Sprintf("l%d.ln2b", l), d)),
			w1:   add(newParam(fmt.Sprintf("l%d.w1", l), d*h)),
			b1:   add(newParam(fmt.Sprintf("l%d.b1", l), h)),
			w2:   add(newParam(fmt.Sprintf("l%d.w2", l), h*d)),
			b2:   add(newParam(fmt.Sprintf("l%d.b2", l), d)),
		}
		for i := range b.ln1g.W {
			b.ln1g.W[i] = 1
		}
		for i := range b.ln2g.W {
			b.ln2g.W[i] = 1
		}
		b.wq.initNormal(r, std)
		b.wk.initNormal(r, std)
		b.wv.initNormal(r, std)
		// Residual-branch outputs scaled down with depth (GPT-2 style).
		b.wo.initNormal(r, std/math.Sqrt(2*float64(cfg.Layers)))
		b.w1.initNormal(r, std)
		b.w2.initNormal(r, std/math.Sqrt(2*float64(cfg.Layers)))
		m.blocks = append(m.blocks, b)
	}
	m.lnfg = add(newParam("lnf.g", d))
	for i := range m.lnfg.W {
		m.lnfg.W[i] = 1
	}
	m.lnfb = add(newParam("lnf.b", d))
	return m, nil
}

// Config returns the architecture configuration.
func (m *Model) Config() Config { return m.cfg }

// Params returns the learnable parameters (shared with the optimizer).
func (m *Model) Params() []*Param { return m.params }

// NumParams returns the total scalar parameter count.
func (m *Model) NumParams() int {
	n := 0
	for _, p := range m.params {
		n += len(p.W)
	}
	return n
}

// ---- forward / backward ----

// lnCache stores per-row layernorm statistics for the backward pass.
type lnCache struct {
	xhat  []float64 // T x D normalised input
	rstd  []float64 // T
	input []float64 // T x D
}

// blockCache stores one block's activations.
type blockCache struct {
	ln1   lnCache
	q     []float64 // T x D
	k     []float64
	v     []float64
	probs []float64 // heads x T x T attention weights
	att   []float64 // T x D concatenated head outputs (before wo)
	x1    []float64 // T x D residual input of MLP sub-layer
	ln2   lnCache
	h1    []float64 // T x H pre-GELU
	hg    []float64 // T x H post-GELU
}

// trace is the activation tape of one forward pass.
type trace struct {
	tokens []int
	x0     []float64 // embeddings
	blocks []blockCache
	xf     []float64 // input of final LN
	lnf    lnCache
	hf     []float64 // final hidden states
}

// layerNorm normalises each row of x (T rows of width d).
func layerNorm(x []float64, T, d int, g, b []float64) (out []float64, cache lnCache) {
	out = make([]float64, len(x))
	cache.xhat = make([]float64, len(x))
	cache.rstd = make([]float64, T)
	cache.input = x
	const eps = 1e-5
	for t := 0; t < T; t++ {
		row := x[t*d : (t+1)*d]
		mean := 0.0
		for _, v := range row {
			mean += v
		}
		mean /= float64(d)
		varr := 0.0
		for _, v := range row {
			dv := v - mean
			varr += dv * dv
		}
		varr /= float64(d)
		rstd := 1 / math.Sqrt(varr+eps)
		cache.rstd[t] = rstd
		for i, v := range row {
			xh := (v - mean) * rstd
			cache.xhat[t*d+i] = xh
			out[t*d+i] = xh*g[i] + b[i]
		}
	}
	return out, cache
}

// layerNormBackward propagates dOut through layernorm, accumulating into
// gGrad/bGrad and returning dIn.
func layerNormBackward(dOut []float64, cache lnCache, T, d int, g, gGrad, bGrad []float64) []float64 {
	dIn := make([]float64, len(dOut))
	for t := 0; t < T; t++ {
		base := t * d
		var sumDxhat, sumDxhatXhat float64
		for i := 0; i < d; i++ {
			dy := dOut[base+i]
			xh := cache.xhat[base+i]
			gGrad[i] += dy * xh
			bGrad[i] += dy
			dxh := dy * g[i]
			sumDxhat += dxh
			sumDxhatXhat += dxh * xh
		}
		inv := 1 / float64(d)
		for i := 0; i < d; i++ {
			dxh := dOut[base+i] * g[i]
			xh := cache.xhat[base+i]
			dIn[base+i] = cache.rstd[t] * (dxh - inv*sumDxhat - xh*inv*sumDxhatXhat)
		}
	}
	return dIn
}

// matmul computes y = x @ w for x: T x in, w: in x out.
func matmul(x []float64, T, in int, w []float64, out int) []float64 {
	y := make([]float64, T*out)
	for t := 0; t < T; t++ {
		xr := x[t*in : (t+1)*in]
		yr := y[t*out : (t+1)*out]
		for i, xv := range xr {
			if xv == 0 {
				continue
			}
			wr := w[i*out : (i+1)*out]
			for j, wv := range wr {
				yr[j] += xv * wv
			}
		}
	}
	return y
}

// matmulBackward accumulates dW and returns dX for y = x @ w.
func matmulBackward(dY, x []float64, T, in int, w, dW []float64, out int) []float64 {
	dX := make([]float64, T*in)
	for t := 0; t < T; t++ {
		dyr := dY[t*out : (t+1)*out]
		xr := x[t*in : (t+1)*in]
		dxr := dX[t*in : (t+1)*in]
		for i := 0; i < in; i++ {
			wr := w[i*out : (i+1)*out]
			dwr := dW[i*out : (i+1)*out]
			xv := xr[i]
			s := 0.0
			for j := 0; j < out; j++ {
				dy := dyr[j]
				s += dy * wr[j]
				dwr[j] += xv * dy
			}
			dxr[i] = s
		}
	}
	return dX
}

const geluC = 0.7978845608028654 // sqrt(2/pi)

func gelu(x float64) float64 {
	return 0.5 * x * (1 + math.Tanh(geluC*(x+0.044715*x*x*x)))
}

func geluGrad(x float64) float64 {
	t := math.Tanh(geluC * (x + 0.044715*x*x*x))
	return 0.5*(1+t) + 0.5*x*(1-t*t)*geluC*(1+3*0.044715*x*x)
}

// forward runs the model over tokens and returns the tape. Logits are not
// materialised for all positions here; loss and generation handle their own
// projections.
func (m *Model) forward(tokens []int) *trace {
	cfg := m.cfg
	T, d := len(tokens), cfg.Dim
	tr := &trace{tokens: tokens}

	x := make([]float64, T*d)
	for t, tok := range tokens {
		te := m.tokEmb.W[tok*d : (tok+1)*d]
		pe := m.posEmb.W[t*d : (t+1)*d]
		for i := 0; i < d; i++ {
			x[t*d+i] = te[i] + pe[i]
		}
	}
	tr.x0 = x

	heads, dh := cfg.Heads, d/cfg.Heads
	scale := 1 / math.Sqrt(float64(dh))
	cur := x
	for _, b := range m.blocks {
		var bc blockCache
		a, ln1 := layerNorm(cur, T, d, b.ln1g.W, b.ln1b.W)
		bc.ln1 = ln1
		bc.q = matmul(a, T, d, b.wq.W, d)
		bc.k = matmul(a, T, d, b.wk.W, d)
		bc.v = matmul(a, T, d, b.wv.W, d)
		bc.probs = make([]float64, heads*T*T)
		bc.att = make([]float64, T*d)
		for h := 0; h < heads; h++ {
			off := h * dh
			for t := 0; t < T; t++ {
				// Scores for positions u <= t.
				probs := bc.probs[(h*T+t)*T : (h*T+t)*T+T]
				maxs := math.Inf(-1)
				for u := 0; u <= t; u++ {
					s := 0.0
					for i := 0; i < dh; i++ {
						s += bc.q[t*d+off+i] * bc.k[u*d+off+i]
					}
					s *= scale
					probs[u] = s
					if s > maxs {
						maxs = s
					}
				}
				sum := 0.0
				for u := 0; u <= t; u++ {
					probs[u] = math.Exp(probs[u] - maxs)
					sum += probs[u]
				}
				for u := 0; u <= t; u++ {
					probs[u] /= sum
					pv := probs[u]
					for i := 0; i < dh; i++ {
						bc.att[t*d+off+i] += pv * bc.v[u*d+off+i]
					}
				}
			}
		}
		attOut := matmul(bc.att, T, d, b.wo.W, d)
		x1 := make([]float64, T*d)
		for i := range x1 {
			x1[i] = cur[i] + attOut[i]
		}
		bc.x1 = x1

		bIn, ln2 := layerNorm(x1, T, d, b.ln2g.W, b.ln2b.W)
		bc.ln2 = ln2
		hid := cfg.MLPHidden
		bc.h1 = matmul(bIn, T, d, b.w1.W, hid)
		bc.hg = make([]float64, T*hid)
		for t := 0; t < T; t++ {
			for j := 0; j < hid; j++ {
				v := bc.h1[t*hid+j] + b.b1.W[j]
				bc.h1[t*hid+j] = v
				bc.hg[t*hid+j] = gelu(v)
			}
		}
		mlpOut := matmul(bc.hg, T, hid, b.w2.W, d)
		next := make([]float64, T*d)
		for t := 0; t < T; t++ {
			for i := 0; i < d; i++ {
				next[t*d+i] = x1[t*d+i] + mlpOut[t*d+i] + b.b2.W[i]
			}
		}
		tr.blocks = append(tr.blocks, bc)
		cur = next
	}
	tr.xf = cur
	hf, lnf := layerNorm(cur, T, d, m.lnfg.W, m.lnfb.W)
	tr.lnf = lnf
	tr.hf = hf
	return tr
}

// logitsAt projects the hidden state at position t onto the vocabulary.
func (m *Model) logitsAt(tr *trace, t int) []float64 {
	d, v := m.cfg.Dim, m.cfg.Vocab
	h := tr.hf[t*d : (t+1)*d]
	logits := make([]float64, v)
	for tok := 0; tok < v; tok++ {
		e := m.tokEmb.W[tok*d : (tok+1)*d]
		s := 0.0
		for i := 0; i < d; i++ {
			s += h[i] * e[i]
		}
		logits[tok] = s
	}
	return logits
}

// lossAndBackward computes mean next-token cross-entropy for the sequence
// and accumulates parameter gradients. Positions where mask is false (or
// when mask is nil, all positions) contribute to the loss; mask has length
// len(tokens)-1 and masks the *prediction* of tokens[i+1].
func (m *Model) lossAndBackward(tokens []int, mask []bool) float64 {
	if len(tokens) < 2 {
		return 0
	}
	var phaseStart time.Time
	if m.obs != nil {
		phaseStart = time.Now()
	}
	tr := m.forward(tokens)
	if m.obs != nil {
		m.obs.Forward.Observe(time.Since(phaseStart).Seconds())
		phaseStart = time.Now()
	}
	cfg := m.cfg
	T, d, v := len(tokens), cfg.Dim, cfg.Vocab

	// Cross-entropy and gradient w.r.t. final hidden states.
	nPred := 0
	loss := 0.0
	dHf := make([]float64, T*d)
	for t := 0; t < T-1; t++ {
		if mask != nil && !mask[t] {
			continue
		}
		nPred++
	}
	if nPred == 0 {
		return 0
	}
	invN := 1 / float64(nPred)
	for t := 0; t < T-1; t++ {
		if mask != nil && !mask[t] {
			continue
		}
		target := tokens[t+1]
		logits := m.logitsAt(tr, t)
		maxl := math.Inf(-1)
		for _, l := range logits {
			if l > maxl {
				maxl = l
			}
		}
		sum := 0.0
		for i, l := range logits {
			logits[i] = math.Exp(l - maxl)
			sum += logits[i]
		}
		loss += -math.Log(logits[target]/sum + 1e-300)
		h := tr.hf[t*d : (t+1)*d]
		for tok := 0; tok < v; tok++ {
			p := logits[tok] / sum
			if tok == target {
				p -= 1
			}
			p *= invN
			if p == 0 {
				continue
			}
			// dL/dh += p * emb[tok]; dL/demb[tok] += p * h
			e := m.tokEmb.W[tok*d : (tok+1)*d]
			ge := m.tokEmb.G[tok*d : (tok+1)*d]
			for i := 0; i < d; i++ {
				dHf[t*d+i] += p * e[i]
				ge[i] += p * h[i]
			}
		}
	}
	loss *= invN

	m.backward(tr, dHf)
	if m.obs != nil {
		// The backward phase covers the loss head plus backpropagation.
		m.obs.Backward.Observe(time.Since(phaseStart).Seconds())
	}
	return loss
}

// backward propagates dHf (gradient at the final layernorm output) through
// the whole network, accumulating parameter gradients.
func (m *Model) backward(tr *trace, dHf []float64) {
	cfg := m.cfg
	T, d := len(tr.tokens), cfg.Dim
	heads, dh := cfg.Heads, d/cfg.Heads
	scale := 1 / math.Sqrt(float64(dh))

	dx := layerNormBackward(dHf, tr.lnf, T, d, m.lnfg.W, m.lnfg.G, m.lnfb.G)

	for li := len(m.blocks) - 1; li >= 0; li-- {
		b := m.blocks[li]
		bc := &tr.blocks[li]
		hid := cfg.MLPHidden

		// MLP sub-layer: next = x1 + gelu(ln2(x1) @ w1 + b1) @ w2 + b2.
		dMlpOut := dx // gradient of mlp output (+ residual passes through)
		for t := 0; t < T; t++ {
			for i := 0; i < d; i++ {
				b.b2.G[i] += dMlpOut[t*d+i]
			}
		}
		dHg := matmulBackward(dMlpOut, bc.hg, T, hid, b.w2.W, b.w2.G, d)
		dH1 := dHg
		for t := 0; t < T; t++ {
			for j := 0; j < hid; j++ {
				g := dHg[t*hid+j] * geluGrad(bc.h1[t*hid+j])
				dH1[t*hid+j] = g
				b.b1.G[j] += g
			}
		}
		dBIn := matmulBackward(dH1, bc.ln2.xhatTimes(b.ln2g.W, b.ln2b.W, T, d), T, d, b.w1.W, b.w1.G, hid)
		dX1 := layerNormBackward(dBIn, bc.ln2, T, d, b.ln2g.W, b.ln2g.G, b.ln2b.G)
		for i := range dX1 {
			dX1[i] += dx[i] // residual
		}

		// Attention sub-layer: x1 = x + att @ wo.
		dAtt := matmulBackward(dX1, bc.att, T, d, b.wo.W, b.wo.G, d)
		dQ := make([]float64, T*d)
		dK := make([]float64, T*d)
		dV := make([]float64, T*d)
		for h := 0; h < heads; h++ {
			off := h * dh
			for t := 0; t < T; t++ {
				probs := bc.probs[(h*T+t)*T : (h*T+t)*T+T]
				// dP[u] = dAtt[t] . v[u]
				var dot float64
				dP := make([]float64, t+1)
				for u := 0; u <= t; u++ {
					s := 0.0
					for i := 0; i < dh; i++ {
						s += dAtt[t*d+off+i] * bc.v[u*d+off+i]
					}
					dP[u] = s
					dot += s * probs[u]
					// dV[u] += P[u] * dAtt[t]
					for i := 0; i < dh; i++ {
						dV[u*d+off+i] += probs[u] * dAtt[t*d+off+i]
					}
				}
				for u := 0; u <= t; u++ {
					dS := probs[u] * (dP[u] - dot) * scale
					if dS == 0 {
						continue
					}
					for i := 0; i < dh; i++ {
						dQ[t*d+off+i] += dS * bc.k[u*d+off+i]
						dK[u*d+off+i] += dS * bc.q[t*d+off+i]
					}
				}
			}
		}
		a := bc.ln1.xhatTimes(b.ln1g.W, b.ln1b.W, T, d)
		dA := matmulBackward(dQ, a, T, d, b.wq.W, b.wq.G, d)
		dA2 := matmulBackward(dK, a, T, d, b.wk.W, b.wk.G, d)
		dA3 := matmulBackward(dV, a, T, d, b.wv.W, b.wv.G, d)
		for i := range dA {
			dA[i] += dA2[i] + dA3[i]
		}
		dXin := layerNormBackward(dA, bc.ln1, T, d, b.ln1g.W, b.ln1g.G, b.ln1b.G)
		for i := range dXin {
			dXin[i] += dX1[i] // residual
		}
		dx = dXin
	}

	// Embedding gradients.
	for t, tok := range tr.tokens {
		for i := 0; i < d; i++ {
			g := dx[t*d+i]
			m.tokEmb.G[tok*d+i] += g
			m.posEmb.G[t*d+i] += g
		}
	}
}

// xhatTimes reconstructs the layernorm output (g*xhat+b) needed as the
// matmul input during the backward pass, avoiding storing it in the cache.
func (c *lnCache) xhatTimes(g, b []float64, T, d int) []float64 {
	out := make([]float64, T*d)
	for t := 0; t < T; t++ {
		for i := 0; i < d; i++ {
			out[t*d+i] = c.xhat[t*d+i]*g[i] + b[i]
		}
	}
	return out
}

// Loss computes the mean next-token cross-entropy without touching
// gradients.
func (m *Model) Loss(tokens []int, mask []bool) float64 {
	if len(tokens) < 2 {
		return 0
	}
	tr := m.forward(tokens)
	loss := 0.0
	n := 0
	for t := 0; t < len(tokens)-1; t++ {
		if mask != nil && !mask[t] {
			continue
		}
		logits := m.logitsAt(tr, t)
		maxl := math.Inf(-1)
		for _, l := range logits {
			if l > maxl {
				maxl = l
			}
		}
		sum := 0.0
		for _, l := range logits {
			sum += math.Exp(l - maxl)
		}
		loss += -(logits[tokens[t+1]] - maxl - math.Log(sum))
		n++
	}
	if n == 0 {
		return 0
	}
	return loss / float64(n)
}
