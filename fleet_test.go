// Fleet integration tests: a router frontend (full serve.Server surface)
// over three in-process serve replicas, exercised end-to-end over real
// sockets — key and session affinity, spillover when a replica dies
// mid-burst, streamed SSE through the tier, and fleet-wide stats
// aggregation. All paths are -race clean.

package wisdom_test

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"wisdom/internal/router"
	"wisdom/internal/serve"
)

// fleetModel is the replica model of the in-process fleet tests: answers
// are tagged with the replica name so tests can tell who served.
type fleetModel struct{ name string }

func (m *fleetModel) answer(prompt string) string {
	return "- name: " + prompt + " [" + m.name + "]\n  ansible.builtin.debug:\n    msg: ok\n"
}

func (m *fleetModel) Predict(c, prompt string) string { return m.answer(prompt) }

func (m *fleetModel) PredictStream(ctx context.Context, c, prompt string, emit func(string)) string {
	final := m.answer(prompt)
	for _, line := range strings.SplitAfter(final, "\n") {
		if line != "" {
			emit(line)
		}
	}
	return final
}

// fleetReplica is one in-process backend replica.
type fleetReplica struct {
	name string
	addr string
	srv  *serve.Server
}

func (r *fleetReplica) shutdown(t *testing.T) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_ = r.srv.Shutdown(ctx)
}

// fleet is a router frontend over three in-process replicas, with the
// router's HTTP surface on a test server and its RPC surface on a real
// socket.
type fleet struct {
	rt       *router.Router
	front    *serve.Server
	http     *httptest.Server
	rpcAddr  string
	replicas []*fleetReplica
}

// servedBy extracts the replica tag from an answer.
func servedBy(t *testing.T, suggestion string) string {
	t.Helper()
	open := strings.Index(suggestion, "[")
	close_ := strings.Index(suggestion, "]")
	if open < 0 || close_ < open {
		t.Fatalf("answer %q carries no replica tag", suggestion)
	}
	return suggestion[open+1 : close_]
}

// startFleetReplica boots one replica on a loopback RPC port.
func startFleetReplica(t *testing.T, name string) *fleetReplica {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := serve.NewServerWithOptions(&fleetModel{name: name}, name, serve.Options{Workers: 8})
	go func() { _ = srv.ServeRPC(ln) }()
	r := &fleetReplica{name: name, addr: ln.Addr().String(), srv: srv}
	t.Cleanup(func() { r.shutdown(t) })
	return r
}

// startFleetTier boots 3 replicas and the router frontend over them. The
// background heartbeat is disabled unless ropts sets an interval, keeping
// liveness deterministic for the tests that don't exercise it.
func startFleetTier(t *testing.T, ropts router.Options) *fleet {
	t.Helper()
	f := &fleet{}
	var addrs []string
	for i := 0; i < 3; i++ {
		r := startFleetReplica(t, fmt.Sprintf("rep%d", i))
		f.replicas = append(f.replicas, r)
		addrs = append(addrs, r.addr)
	}
	if ropts.HeartbeatInterval == 0 {
		ropts.HeartbeatInterval = -1
	}
	rt, err := router.New(addrs, ropts)
	if err != nil {
		t.Fatal(err)
	}
	f.rt = rt
	t.Cleanup(rt.Close)

	// The frontend is a stock serve.Server wrapping the router — same
	// cache/singleflight/pool stack and HTTP+RPC surface as a replica.
	// Forwarding is I/O-bound, so workers exceed GOMAXPROCS (1 in CI).
	// The admin token arms the membership surface for the churn tests.
	f.front = serve.NewServerWithOptions(rt, "router", serve.Options{
		Workers: 16, CacheSize: 256, AdminToken: fleetAdminToken,
	})
	f.http = httptest.NewServer(f.front.Handler())
	t.Cleanup(f.http.Close)
	rln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	f.rpcAddr = rln.Addr().String()
	go func() { _ = f.front.ServeRPC(rln) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = f.front.Shutdown(ctx)
	})
	return f
}

// replicaByAddr resolves a backend address to its replica.
func (f *fleet) replicaByAddr(t *testing.T, addr string) *fleetReplica {
	t.Helper()
	for _, r := range f.replicas {
		if r.addr == addr {
			return r
		}
	}
	t.Fatalf("no replica at %s", addr)
	return nil
}

// ownedPrompt finds a prompt whose affinity key the given replica owns.
func (f *fleet) ownedPrompt(t *testing.T, addr, pattern string, from int) string {
	t.Helper()
	for i := from; i < from+100000; i++ {
		p := fmt.Sprintf(pattern, i)
		if owner, ok := f.rt.Owner(serve.Request{Prompt: p}); ok && owner == addr {
			return p
		}
	}
	t.Fatalf("no prompt owned by %s", addr)
	return ""
}

// fleetAdminToken authenticates the fleet tests' membership operations.
const fleetAdminToken = "fleet-test-admin-token"

// adminCall runs one request against the fleet's /admin/backends surface
// with the admin token, returning the status code and decoded response.
func (f *fleet) adminCall(t *testing.T, method, body string) (int, serve.AdminResponse) {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, f.http.URL+"/admin/backends", rd)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(serve.AdminTokenHeader, fleetAdminToken)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	var ar serve.AdminResponse
	_ = json.Unmarshal(raw, &ar)
	return resp.StatusCode, ar
}

// sseStream posts req to the SSE endpoint and collects the stream, with
// failures returned as values so burst workers can report them without
// touching testing.T from a goroutine.
func sseStream(url string, req serve.Request) (final serve.Response, joined string, err error) {
	body, _ := json.Marshal(req)
	resp, err := http.Post(url+"/v1/completions/stream", "application/json", bytes.NewReader(body))
	if err != nil {
		return final, "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		return final, "", fmt.Errorf("stream status %d", resp.StatusCode)
	}
	var deltas []string
	sawDone := false
	sc := bufio.NewScanner(resp.Body)
	event := ""
	for sc.Scan() {
		line := sc.Text()
		if v, ok := strings.CutPrefix(line, "event: "); ok {
			event = v
			continue
		}
		data, ok := strings.CutPrefix(line, "data: ")
		if !ok {
			continue
		}
		switch event {
		case "delta":
			var d struct {
				Text string `json:"text"`
			}
			if err := json.Unmarshal([]byte(data), &d); err != nil {
				return final, "", fmt.Errorf("delta frame %q: %w", data, err)
			}
			deltas = append(deltas, d.Text)
		case "done":
			if err := json.Unmarshal([]byte(data), &final); err != nil {
				return final, "", fmt.Errorf("done frame %q: %w", data, err)
			}
			sawDone = true
		case "error":
			return final, "", fmt.Errorf("stream error frame: %s", data)
		}
	}
	if err := sc.Err(); err != nil {
		return final, "", err
	}
	if !sawDone {
		return final, "", fmt.Errorf("stream ended without a done event")
	}
	return final, strings.Join(deltas, ""), nil
}

// TestFleetMembershipChurnUnderBurst is the PR's acceptance test: the
// 3-replica fleet sustains a concurrent HTTP-unary + SSE + RPC-stream burst
// while — through the real authenticated admin surface — a fourth replica
// joins and one of the originals drains out and is removed. Invariants:
// zero failed requests, no torn or duplicated stream deltas, the joiner
// serves traffic, the removed replica serves none after removal, and the
// post-churn fleet stats equal the surviving replicas' own counters.
func TestFleetMembershipChurnUnderBurst(t *testing.T) {
	f := startFleetTier(t, router.Options{})
	leaver := f.replicas[0]
	joiner := startFleetReplica(t, "rep3")

	const workers, perWorker = 4, 27
	total := workers * perWorker
	progress := make(chan struct{}, total)
	type result struct {
		prompt, answer, joined string
		stream                 bool
		err                    error
	}
	results := make(chan result, total)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			rpc, err := serve.Dial(f.rpcAddr)
			if err != nil {
				results <- result{err: fmt.Errorf("worker %d dial: %w", w, err)}
				return
			}
			defer rpc.Close()
			for i := 0; i < perWorker; i++ {
				prompt := fmt.Sprintf("churn burst %d-%d", w, i)
				req := serve.Request{Prompt: prompt}
				res := result{prompt: prompt}
				switch i % 3 {
				case 0: // HTTP unary
					body, _ := json.Marshal(req)
					resp, err := http.Post(f.http.URL+"/v1/completions", "application/json", bytes.NewReader(body))
					if err != nil {
						res.err = err
						break
					}
					data, _ := io.ReadAll(resp.Body)
					resp.Body.Close()
					if resp.StatusCode != 200 {
						res.err = fmt.Errorf("status %d: %s", resp.StatusCode, data)
						break
					}
					var out serve.Response
					if res.err = json.Unmarshal(data, &out); res.err == nil {
						res.answer = out.Suggestion
					}
				case 1: // SSE stream
					res.stream = true
					final, joined, err := sseStream(f.http.URL, req)
					res.answer, res.joined, res.err = final.Suggestion, joined, err
				case 2: // streamed RPC through the router frontend
					res.stream = true
					var deltas []string
					final, err := rpc.PredictStream(req, func(d string) { deltas = append(deltas, d) })
					res.answer, res.joined, res.err = final.Suggestion, strings.Join(deltas, ""), err
				}
				results <- res
				progress <- struct{}{}
			}
		}()
	}

	// The churn driver paces itself on completed requests so every phase
	// lands mid-burst on any machine speed, and runs the real admin
	// surface: HTTP join, RPC drain, HTTP remove.
	awaitCompleted := func(n int) {
		for i := 0; i < n; i++ {
			<-progress
		}
	}
	churnErr := make(chan error, 1)
	go func() {
		churnErr <- func() error {
			awaitCompleted(25)
			code, ar := f.adminCall(t, http.MethodPost,
				fmt.Sprintf(`{"action":"join","backend":%q}`, joiner.addr))
			if code != 200 || ar.Status != "ok" {
				return fmt.Errorf("admin join = %d %+v", code, ar)
			}
			if len(ar.Members) != 4 {
				return fmt.Errorf("post-join members = %d, want 4", len(ar.Members))
			}

			awaitCompleted(25)
			// Drain over RPC: the admin op rides the same binary protocol as
			// predictions.
			c, err := serve.Dial(f.rpcAddr)
			if err != nil {
				return err
			}
			dr, err := c.Admin(serve.AdminRequest{
				Action: serve.AdminDrain, Backend: leaver.addr, Token: fleetAdminToken,
			})
			c.Close()
			if err != nil {
				return fmt.Errorf("admin drain: %w", err)
			}
			if dr.Status != "ok" {
				return fmt.Errorf("admin drain = %+v", dr)
			}

			awaitCompleted(25)
			code, ar = f.adminCall(t, http.MethodPost,
				fmt.Sprintf(`{"action":"remove","backend":%q}`, leaver.addr))
			if code != 200 || ar.Status != "ok" {
				return fmt.Errorf("admin remove = %d %+v", code, ar)
			}
			if len(ar.Members) != 3 {
				return fmt.Errorf("post-remove members = %d, want 3", len(ar.Members))
			}
			return nil
		}()
	}()

	wg.Wait()
	close(results)
	if err := <-churnErr; err != nil {
		t.Fatal(err)
	}

	// Zero failures; every answer is well-formed; every stream reassembles
	// to exactly its final answer with exactly one copy of the completion.
	servedCount := map[string]int{}
	for res := range results {
		if res.err != nil {
			t.Fatalf("request %q failed during churn: %v", res.prompt, res.err)
		}
		if !strings.Contains(res.answer, res.prompt) {
			t.Fatalf("request %q got wrong answer %q", res.prompt, res.answer)
		}
		open, close_ := strings.Index(res.answer, "["), strings.Index(res.answer, "]")
		if open < 0 || close_ < open {
			t.Fatalf("answer %q carries no replica tag", res.answer)
		}
		servedCount[res.answer[open+1:close_]]++
		if res.stream {
			if res.joined != res.answer {
				t.Fatalf("stream %q deltas reassemble to %q, want exactly %q", res.prompt, res.joined, res.answer)
			}
			if strings.Count(res.joined, res.prompt) != 1 {
				t.Fatalf("stream %q delivered %d copies of the completion, want exactly 1",
					res.prompt, strings.Count(res.joined, res.prompt))
			}
		}
	}
	if servedCount[joiner.name] == 0 {
		t.Error("the joined replica served no traffic across ~75 post-join requests")
	}

	// After removal the leaver serves nothing: fresh prompts only land on
	// the survivors.
	for i := 0; i < 20; i++ {
		resp, out := postJSON(t, f.http.URL+"/v1/completions", serve.Request{Prompt: fmt.Sprintf("post-churn probe %d", i)})
		if resp.StatusCode != 200 {
			t.Fatalf("post-churn probe %d: status %d", i, resp.StatusCode)
		}
		if got := servedBy(t, out.Suggestion); got == leaver.name {
			t.Fatalf("removed replica %s still serving traffic", leaver.name)
		}
	}

	// The admin status read and the stats aggregate agree on the surviving
	// fleet, and the fleet counters equal the replicas' own sum.
	code, status := f.adminCall(t, http.MethodGet, "")
	if code != 200 || len(status.Members) != 3 {
		t.Fatalf("admin status = %d with %d members, want 200 with 3", code, len(status.Members))
	}
	survivors := []*fleetReplica{f.replicas[1], f.replicas[2], joiner}
	for _, m := range status.Members {
		if m.State != "active" {
			t.Errorf("member %s state = %q post-churn, want active", m.Addr, m.State)
		}
		if m.Addr == leaver.addr {
			t.Errorf("removed backend %s still in the membership table", leaver.addr)
		}
	}

	direct := 0
	for _, r := range survivors {
		c, err := serve.Dial(r.addr)
		if err != nil {
			t.Fatal(err)
		}
		st, err := c.Stats()
		c.Close()
		if err != nil {
			t.Fatal(err)
		}
		direct += st.Requests
	}
	hr, err := http.Get(f.http.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	var fleetStats router.FleetStats
	if err := json.NewDecoder(hr.Body).Decode(&fleetStats); err != nil {
		t.Fatal(err)
	}
	if len(fleetStats.Backends) != 3 {
		t.Fatalf("post-churn aggregate lists %d backends, want 3", len(fleetStats.Backends))
	}
	if fleetStats.Fleet.Requests != direct {
		t.Errorf("aggregated fleet requests = %d, want surviving-replica sum %d", fleetStats.Fleet.Requests, direct)
	}
	for _, row := range fleetStats.Backends {
		if row.Addr == leaver.addr {
			t.Errorf("removed backend %s still in the stats aggregate", leaver.addr)
		}
		if row.State != "active" {
			t.Errorf("backend %s state = %q post-churn, want active", row.Addr, row.State)
		}
	}
}

func TestFleetKeyAffinityHTTP(t *testing.T) {
	f := startFleetTier(t, router.Options{})

	// The same prompt, repeated: always the same replica (via ring), and
	// the router's response cache makes repeats free after the first.
	req := serve.Request{Prompt: "deploy the web tier"}
	ownerAddr, _ := f.rt.Owner(req)
	want := f.replicaByAddr(t, ownerAddr)
	var first string
	for i := 0; i < 5; i++ {
		resp, out := postJSON(t, f.http.URL+"/v1/completions", req)
		if resp.StatusCode != 200 {
			t.Fatalf("status = %d", resp.StatusCode)
		}
		if got := servedBy(t, out.Suggestion); got != want.name {
			t.Fatalf("request %d served by %s, want ring owner %s", i, got, want.name)
		}
		if first == "" {
			first = out.Suggestion
		} else if out.Suggestion != first {
			t.Fatalf("answers diverged for one key: %q vs %q", out.Suggestion, first)
		}
	}

	// Distinct prompts spread across replicas.
	served := map[string]bool{}
	for i := 0; i < 30; i++ {
		_, out := postJSON(t, f.http.URL+"/v1/completions", serve.Request{Prompt: fmt.Sprintf("spread task %d", i)})
		served[servedBy(t, out.Suggestion)] = true
	}
	if len(served) < 2 {
		t.Errorf("30 distinct prompts all landed on %v, want >= 2 replicas", served)
	}
	if got := f.rt.Spillovers(); got != 0 {
		t.Errorf("spillovers = %d on a healthy fleet, want 0", got)
	}
}

func TestFleetSessionAffinityHTTP(t *testing.T) {
	f := startFleetTier(t, router.Options{})
	const sid = "fleet-session-7"
	ownerAddr, _ := f.rt.Owner(serve.Request{SessionID: sid})
	owner := f.replicaByAddr(t, ownerAddr)

	// Ten different prompts under one session, set via the header like the
	// editor plugin does: all must land on the session owner even though
	// their content keys hash elsewhere.
	for i := 0; i < 10; i++ {
		body, _ := json.Marshal(serve.Request{Prompt: fmt.Sprintf("session edit %d", i)})
		hreq, _ := http.NewRequest("POST", f.http.URL+"/v1/completions", bytes.NewReader(body))
		hreq.Header.Set("Content-Type", "application/json")
		hreq.Header.Set("X-Wisdom-Session", sid)
		resp, err := http.DefaultClient.Do(hreq)
		if err != nil {
			t.Fatal(err)
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("status = %d: %s", resp.StatusCode, data)
		}
		var out serve.Response
		if err := json.Unmarshal(data, &out); err != nil {
			t.Fatal(err)
		}
		if got := servedBy(t, out.Suggestion); got != owner.name {
			t.Fatalf("session request %d served by %s, want session owner %s", i, got, owner.name)
		}
	}
}

func TestFleetSpilloverWhenReplicaKilledMidBurst(t *testing.T) {
	f := startFleetTier(t, router.Options{})
	victimAddr, _ := f.rt.Owner(serve.Request{Prompt: "burst task 1000000"})
	victim := f.replicaByAddr(t, victimAddr)

	// 24 distinct prompts, all owned by the victim, fired concurrently; the
	// victim is shut down after the first third completes. Zero failures
	// allowed: in-flight requests finish on the draining victim, later ones
	// spill to the ring successor.
	var prompts []string
	from := 0
	for len(prompts) < 24 {
		p := f.ownedPrompt(t, victimAddr, "burst task %d", from)
		prompts = append(prompts, p)
		fmt.Sscanf(p, "burst task %d", &from)
		from++
	}

	var wg sync.WaitGroup
	errs := make(chan string, len(prompts))
	firstThird := make(chan struct{}, len(prompts))
	for i, p := range prompts {
		wg.Add(1)
		go func(i int, p string) {
			defer wg.Done()
			if i >= 8 {
				// The later two thirds wait for the kill signal path below
				// to have begun, guaranteeing some requests race the death.
				<-firstThird
			}
			resp, out := postJSON(t, f.http.URL+"/v1/completions", serve.Request{Prompt: p})
			if resp.StatusCode != 200 {
				errs <- fmt.Sprintf("prompt %q: status %d", p, resp.StatusCode)
				return
			}
			if !strings.Contains(out.Suggestion, p) {
				errs <- fmt.Sprintf("prompt %q: wrong answer %q", p, out.Suggestion)
			}
		}(i, p)
	}
	victim.shutdown(t)
	close(firstThird) // release the held requests now that the victim is gone
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
	if got := f.rt.Spillovers(); got == 0 {
		t.Error("no spillover recorded although the owner of every burst key died")
	}
	// Everything after the kill was served by survivors.
	for _, p := range prompts[8:] {
		_, out := postJSON(t, f.http.URL+"/v1/completions", serve.Request{Prompt: p})
		if got := servedBy(t, out.Suggestion); got == victim.name {
			t.Errorf("prompt %q still served by the dead replica", p)
		}
	}
}

func TestFleetSSEStreamEndToEnd(t *testing.T) {
	f := startFleetTier(t, router.Options{})
	req := serve.Request{Prompt: "stream the rollout"}
	ownerAddr, _ := f.rt.Owner(req)
	want := f.replicaByAddr(t, ownerAddr)
	wantFinal := "- name: " + req.Prompt + " [" + want.name + "]\n  ansible.builtin.debug:\n    msg: ok\n"

	body, _ := json.Marshal(req)
	resp, err := http.Post(f.http.URL+"/v1/completions/stream", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("stream status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/event-stream") {
		t.Fatalf("content type = %q", ct)
	}

	// Walk the SSE frames: deltas must reassemble to the replica's exact
	// final answer, once, terminated by a done event.
	var deltas []string
	var final serve.Response
	sawDone := false
	sc := bufio.NewScanner(resp.Body)
	event := ""
	for sc.Scan() {
		line := sc.Text()
		if v, ok := strings.CutPrefix(line, "event: "); ok {
			event = v
			continue
		}
		data, ok := strings.CutPrefix(line, "data: ")
		if !ok {
			continue
		}
		switch event {
		case "delta":
			var d struct {
				Text string `json:"text"`
			}
			if err := json.Unmarshal([]byte(data), &d); err != nil {
				t.Fatalf("delta frame %q: %v", data, err)
			}
			deltas = append(deltas, d.Text)
		case "done":
			if err := json.Unmarshal([]byte(data), &final); err != nil {
				t.Fatalf("done frame %q: %v", data, err)
			}
			sawDone = true
		case "error":
			t.Fatalf("stream error frame: %s", data)
		}
	}
	if !sawDone {
		t.Fatal("stream ended without a done event")
	}
	if final.Suggestion != wantFinal {
		t.Errorf("final = %q, want %q", final.Suggestion, wantFinal)
	}
	if got := strings.Join(deltas, ""); got != wantFinal {
		t.Errorf("deltas reassemble to %q, want exactly %q", got, wantFinal)
	}
}

func TestFleetStreamedRPCEndToEnd(t *testing.T) {
	f := startFleetTier(t, router.Options{})
	req := serve.Request{Prompt: "rpc stream task"}
	c, err := serve.Dial(f.rpcAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var deltas []string
	final, err := c.PredictStream(req, func(d string) { deltas = append(deltas, d) })
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(deltas, ""); got != final.Suggestion {
		t.Errorf("rpc deltas reassemble to %q, want final %q", got, final.Suggestion)
	}
	if servedBy(t, final.Suggestion) == "" {
		t.Error("rpc stream answer lost its replica tag")
	}
}

func TestFleetAggregatedStatsEqualsReplicaSum(t *testing.T) {
	f := startFleetTier(t, router.Options{})
	const n = 15
	for i := 0; i < n; i++ {
		resp, _ := postJSON(t, f.http.URL+"/v1/completions", serve.Request{Prompt: fmt.Sprintf("stats probe %d", i)})
		if resp.StatusCode != 200 {
			t.Fatalf("probe %d: status %d", i, resp.StatusCode)
		}
	}

	// Scrape every replica directly over RPC first (the aggregate below
	// re-scrapes; the stats op itself does not count as a prediction, so
	// both observe the same totals).
	direct := 0
	for _, r := range f.replicas {
		c, err := serve.Dial(r.addr)
		if err != nil {
			t.Fatal(err)
		}
		st, err := c.Stats()
		c.Close()
		if err != nil {
			t.Fatal(err)
		}
		direct += st.Requests
	}
	if direct != n {
		t.Fatalf("replicas served %d predictions in total, want %d", direct, n)
	}

	hr, err := http.Get(f.http.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	var fleetStats router.FleetStats
	if err := json.NewDecoder(hr.Body).Decode(&fleetStats); err != nil {
		t.Fatal(err)
	}
	if fleetStats.Router.Requests != n {
		t.Errorf("router local requests = %d, want %d", fleetStats.Router.Requests, n)
	}
	if fleetStats.Fleet.Requests != direct {
		t.Errorf("aggregated fleet requests = %d, want replica sum %d", fleetStats.Fleet.Requests, direct)
	}
	if len(fleetStats.Backends) != 3 {
		t.Fatalf("aggregate lists %d backends, want 3", len(fleetStats.Backends))
	}
	rowSum := 0
	for _, row := range fleetStats.Backends {
		if row.Stats == nil {
			t.Fatalf("backend %s missing stats snapshot", row.Addr)
		}
		rowSum += row.Stats.Requests
		if !row.Alive || row.Breaker != "closed" {
			t.Errorf("backend %s: alive=%v breaker=%s on a healthy fleet", row.Addr, row.Alive, row.Breaker)
		}
	}
	if rowSum != direct {
		t.Errorf("per-backend rows sum to %d, want %d", rowSum, direct)
	}
}
