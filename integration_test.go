package wisdom_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildTool compiles one cmd/ binary into a shared temp dir (once per test
// process) and returns its path.
func buildTool(t *testing.T, name string) string {
	t.Helper()
	if testing.Short() {
		t.Skip("integration build in short mode")
	}
	dir := sharedBinDir(t)
	bin := filepath.Join(dir, name)
	if _, err := os.Stat(bin); err == nil {
		return bin
	}
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/"+name)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("build %s: %v\n%s", name, err, out)
	}
	return bin
}

var binDir string

func sharedBinDir(t *testing.T) string {
	t.Helper()
	if binDir == "" {
		dir, err := os.MkdirTemp("", "wisdom-bin")
		if err != nil {
			t.Fatal(err)
		}
		binDir = dir
	}
	return binDir
}

func TestWisdomEvalCLI(t *testing.T) {
	bin := buildTool(t, "wisdom-eval")
	pred := "- name: install nginx\n  ansible.builtin.apt:\n    name: nginx\n    state: present\n"
	ref := "- name: install nginx\n  ansible.builtin.apt:\n    name: nginx\n    state: latest\n"
	out, err := exec.Command(bin, "-pred-text", pred, "-ref-text", ref).CombinedOutput()
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	text := string(out)
	for _, want := range []string{"Schema Correct : true", "Exact Match    : false", "BLEU", "Ansible Aware"} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q:\n%s", want, text)
		}
	}
}

func TestWisdomEvalCLIFiles(t *testing.T) {
	bin := buildTool(t, "wisdom-eval")
	dir := t.TempDir()
	pred := filepath.Join(dir, "pred.yml")
	ref := filepath.Join(dir, "ref.yml")
	content := "- name: x\n  ansible.builtin.debug:\n    msg: hi\n"
	if err := os.WriteFile(pred, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(ref, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := exec.Command(bin, "-pred", pred, "-ref", ref).CombinedOutput()
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.Contains(string(out), "Exact Match    : true") {
		t.Errorf("identical files not exact:\n%s", out)
	}
	// Missing args exit non-zero.
	if err := exec.Command(bin).Run(); err == nil {
		t.Error("no-arg invocation succeeded")
	}
}

func TestWisdomDataCLI(t *testing.T) {
	bin := buildTool(t, "wisdom-data")
	dir := t.TempDir()
	out, err := exec.Command(bin, "-factor", "4000", "-out", dir).CombinedOutput()
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	text := string(out)
	for _, want := range []string{"Galaxy", "GitLab", "AfterDedup", "train/valid/test"} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q", want)
		}
	}
	for _, f := range []string{"galaxy.jsonl", "gitlab-ansible.jsonl", "github-gbq-ansible.jsonl", "github-gbq-generic.jsonl"} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Errorf("missing output file %s", f)
		}
	}
}

func TestWisdomBenchCLIFigure2(t *testing.T) {
	bin := buildTool(t, "wisdom-bench")
	out, err := exec.Command(bin, "-quick", "-figure", "2").CombinedOutput()
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	text := string(out)
	for _, want := range []string{"NL->T", "T+NL->T", "model input", "expected output"} {
		if !strings.Contains(text, want) {
			t.Errorf("figure 2 output missing %q", want)
		}
	}
}

func TestWisdomBenchCLITables12(t *testing.T) {
	bin := buildTool(t, "wisdom-bench")
	out, err := exec.Command(bin, "-quick", "-table", "1").CombinedOutput()
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.Contains(string(out), "Galaxy") {
		t.Errorf("table 1 output:\n%s", out)
	}
	out, err = exec.Command(bin, "-quick", "-table", "2").CombinedOutput()
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.Contains(string(out), "Wisdom-Yaml-Multi") {
		t.Errorf("table 2 output:\n%s", out)
	}
}

func TestWisdomLintCLI(t *testing.T) {
	bin := buildTool(t, "wisdom-lint")
	dir := t.TempDir()
	good := filepath.Join(dir, "good.yml")
	bad := filepath.Join(dir, "bad.yml")
	legacy := filepath.Join(dir, "legacy.yml")
	os.WriteFile(good, []byte("---\n- name: ok\n  ansible.builtin.debug:\n    msg: hi\n"), 0o644)
	os.WriteFile(bad, []byte("---\n- name: broken\n  ansible.builtin.apt:\n    name: x\n    bogus: 1\n"), 0o644)
	os.WriteFile(legacy, []byte("---\n- name: legacy\n  yum: name=httpd state=latest\n"), 0o644)

	out, err := exec.Command(bin, good).CombinedOutput()
	if err != nil {
		t.Fatalf("good file failed: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "PASS") {
		t.Errorf("no PASS line:\n%s", out)
	}

	out, err = exec.Command(bin, bad).CombinedOutput()
	if err == nil {
		t.Errorf("bad file passed:\n%s", out)
	}
	if !strings.Contains(string(out), "unknown parameter") {
		t.Errorf("missing violation message:\n%s", out)
	}

	// -fix-fqcn prints the normalised form with the FQCN and a dict.
	out, _ = exec.Command(bin, "-fix-fqcn", legacy).CombinedOutput()
	text := string(out)
	if !strings.Contains(text, "ansible.builtin.yum") || !strings.Contains(text, "state: latest") {
		t.Errorf("normalised output wrong:\n%s", text)
	}

	// No args: usage error.
	if err := exec.Command(bin).Run(); err == nil {
		t.Error("no-arg invocation succeeded")
	}
}

func TestWisdomEvalBatchAndExplain(t *testing.T) {
	bin := buildTool(t, "wisdom-eval")
	dir := t.TempDir()
	task := `- name: x\n  ansible.builtin.debug:\n    msg: hi\n`
	batch := filepath.Join(dir, "pairs.jsonl")
	line := `{"pred": "` + task + `", "ref": "` + task + `"}` + "\n"
	if err := os.WriteFile(batch, []byte(line+line), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := exec.Command(bin, "-batch", batch).CombinedOutput()
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	text := string(out)
	if !strings.Contains(text, "pairs          : 2") || !strings.Contains(text, "Exact Match    : 100.00") {
		t.Errorf("batch output:\n%s", text)
	}

	// Explain mode prints an edit list.
	pred := "- name: x\n  ansible.builtin.apt:\n    name: nginx\n    state: absent\n"
	ref := "- name: x\n  ansible.builtin.apt:\n    name: nginx\n    state: present\n"
	out, err = exec.Command(bin, "-pred-text", pred, "-ref-text", ref, "-explain").CombinedOutput()
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.Contains(string(out), "wrong-value") {
		t.Errorf("explain output:\n%s", out)
	}
}
