package wisdom_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"wisdom/internal/dataset"
	"wisdom/internal/neural"
	"wisdom/internal/observe"
	"wisdom/internal/serve"
	"wisdom/internal/tokenizer"
	"wisdom/internal/wisdom"
)

// schedStressModel trains the tiny memorisable transformer the streaming
// tests use, as a wisdom.Model the serving stack can wrap.
func schedStressModel(t *testing.T) *wisdom.Model {
	t.Helper()
	task := "- name: Install nginx\n  ansible.builtin.apt:\n    name: nginx\n    state: present\n"
	texts := []string{task, task, task, task}
	tok, err := tokenizer.Train(texts, 300)
	if err != nil {
		t.Fatal(err)
	}
	const ctx = 64
	nm, err := neural.NewModel(neural.Config{
		Vocab: tok.VocabSize(), Ctx: ctx, Dim: 32, Heads: 2, Layers: 2, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	nm.Train(dataset.PackFiles(tok, texts, ctx), neural.TrainConfig{Epochs: 120, LR: 3e-3, BatchSize: 4, Seed: 1})
	return &wisdom.Model{
		Name:       "neural-sched-stress",
		Tok:        tok,
		LM:         &wisdom.NeuralLM{Model: nm},
		CtxWindow:  ctx,
		Style:      dataset.NameCompletion,
		MaxNewTask: 28,
	}
}

// TestSchedStressHTTP drives the whole serving stack — HTTP handler, worker
// pool, response cache off, continuous-batching engine, transformer decode —
// with mixed concurrent unary and streamed traffic over a real transformer.
// Every answer must be a well-formed task identical to the serial Predict,
// the engine (not the serial path) must have decoded the traffic, and the
// scheduler metrics must be exported. This is the live-scheduler counterpart
// of TestE2ESchedFallback, which covers the binary's flag wiring.
func TestSchedStressHTTP(t *testing.T) {
	model := schedStressModel(t)
	want := model.Predict("", "Install nginx")
	if !strings.HasPrefix(want, "- name:") {
		t.Fatalf("serial Predict = %q", want)
	}
	if !model.EnableScheduler(neural.EngineConfig{MaxBatch: 4}) {
		t.Fatal("EnableScheduler returned false on a neural model")
	}
	defer model.CloseScheduler(context.Background())

	// Cache off so every request reaches the engine; 8 workers so the pool
	// admits two full step batches of traffic at once.
	srv := serve.NewServerWithOptions(model, model.Name, serve.Options{Workers: 8, CacheSize: 0})
	reg := observe.NewRegistry()
	srv.Instrument(reg)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const n = 24
	var wg sync.WaitGroup
	errs := make([]string, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body, _ := json.Marshal(serve.Request{Prompt: "Install nginx"})
			if i%3 == 2 {
				// Streamed leg: deltas must concatenate to the unary answer
				// (or the done event must flag the rewrite).
				resp, err := http.Post(ts.URL+"/v1/completions/stream", "application/json", bytes.NewReader(body))
				if err != nil {
					errs[i] = err.Error()
					return
				}
				defer resp.Body.Close()
				if resp.StatusCode != 200 {
					errs[i] = fmt.Sprintf("stream status %d", resp.StatusCode)
					return
				}
				raw, _ := io.ReadAll(resp.Body)
				if !strings.Contains(string(raw), "event: done") {
					errs[i] = "stream ended without a done event"
				}
				return
			}
			resp, err := http.Post(ts.URL+"/v1/completions", "application/json", bytes.NewReader(body))
			if err != nil {
				errs[i] = err.Error()
				return
			}
			defer resp.Body.Close()
			var out serve.Response
			data, _ := io.ReadAll(resp.Body)
			if err := json.Unmarshal(data, &out); err != nil {
				errs[i] = fmt.Sprintf("bad response %q", data)
				return
			}
			if resp.StatusCode != 200 {
				errs[i] = fmt.Sprintf("status %d: %s", resp.StatusCode, out.Error)
				return
			}
			if out.Suggestion != want {
				errs[i] = fmt.Sprintf("suggestion %q, want %q", out.Suggestion, want)
			}
		}(i)
	}
	wg.Wait()
	for i, e := range errs {
		if e != "" {
			t.Errorf("request %d: %s", i, e)
		}
	}

	// The engine, not the serial path, decoded the traffic.
	st := srv.Stats()
	if !st.SchedEnabled || st.SchedMaxBatch != 4 {
		t.Fatalf("stats sched shape = %+v", st)
	}
	if st.SchedAdmitted == 0 || st.SchedAdmitted != st.SchedRetired {
		t.Errorf("sched admitted=%d retired=%d, want equal and nonzero", st.SchedAdmitted, st.SchedRetired)
	}
	if st.SchedActive != 0 || st.SchedQueued != 0 {
		t.Errorf("sched active=%d queued=%d after drain, want 0/0", st.SchedActive, st.SchedQueued)
	}
	if st.SchedOccupancy <= 0 || st.SchedOccupancy > 1 {
		t.Errorf("SchedOccupancy = %v, want in (0, 1]", st.SchedOccupancy)
	}
	t.Logf("sched stress: %d admitted, cumulative occupancy %.2f", st.SchedAdmitted, st.SchedOccupancy)
	if got := srv.Pool().Active(); got != 0 {
		t.Errorf("pool.Active = %d after drain, want 0 (slot leak)", got)
	}

	// The scheduler metrics are exported.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"wisdom_sched_batch_occupancy", "wisdom_sched_queue_depth",
		"wisdom_sched_admitted_total", "wisdom_sched_retired_total",
		"wisdom_sched_queue_wait_seconds",
	} {
		if !strings.Contains(string(raw), want) {
			t.Errorf("metrics missing %s", want)
		}
	}
}
